//! Tail-accurate latency accumulation.
//!
//! Per-request latencies need percentiles up to p999 across many runs
//! without carrying every sample through the cache and telemetry merge.
//! [`TailHistogram`] combines two order-independent structures:
//!
//! * a log-scale histogram — values below 16 ns are exact, larger values
//!   land in buckets of 16 sub-divisions per power of two, so a quantile
//!   read off a bucket's upper bound overestimates the exact sample by at
//!   most a factor of 1/16 (6.25%) and never underestimates it;
//! * an exact reservoir of the largest [`TOP_K`] samples — the extreme
//!   tail (where log-bucket error would be most visible in absolute
//!   nanoseconds) is answered exactly as long as the queried rank falls
//!   within the reservoir.
//!
//! Merging two histograms sums bucket counts and keeps the largest
//! `TOP_K` of the union, both commutative and associative, so folding
//! per-run histograms in slot order yields the same result at any
//! worker count.

use nest_simcore::json::{self, Json};
use nest_simcore::snap;

/// Sub-buckets per power of two; also the reciprocal of the worst-case
/// relative quantile error.
const SUBBUCKETS: u64 = 16;

/// Number of exact largest samples retained.
pub const TOP_K: usize = 1024;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as u64;
    let sub = (v >> (e - 4)) & (SUBBUCKETS - 1);
    ((e - 3) * SUBBUCKETS + sub) as usize
}

/// The largest value mapping to bucket `index` (the estimate a quantile
/// read returns).
fn bucket_upper(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUBBUCKETS {
        // Buckets 0..31 are exact: 16..31 have e = 4, width 1.
        return index;
    }
    let e = index / SUBBUCKETS + 3;
    let sub = index % SUBBUCKETS;
    // The topmost bucket's exclusive bound is 2^64; the wrap yields the
    // correct inclusive u64::MAX.
    ((SUBBUCKETS + sub + 1) << (e - 4)).wrapping_sub(1)
}

/// A mergeable log-scale histogram with an exact top-`K` reservoir.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TailHistogram {
    /// Per-bucket sample counts, trailing zeros trimmed.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub total: u64,
    /// Sum of all samples (for the mean).
    pub sum: u64,
    /// The largest [`TOP_K`] samples, ascending.
    pub topk: Vec<u64>,
}

impl TailHistogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let i = bucket_index(v);
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        if self.topk.len() < TOP_K || v > self.topk[0] {
            let pos = self.topk.partition_point(|x| *x < v);
            self.topk.insert(pos, v);
            if self.topk.len() > TOP_K {
                self.topk.remove(0);
            }
        }
    }

    /// Folds `other` in: bucket-wise count sums plus the largest `TOP_K`
    /// of the combined reservoirs. Merge order never changes the result.
    pub fn merge(&mut self, other: &TailHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (d, s) in self.counts.iter_mut().zip(&other.counts) {
            *d += s;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        let mut all = std::mem::take(&mut self.topk);
        all.extend_from_slice(&other.topk);
        all.sort_unstable();
        if all.len() > TOP_K {
            all.drain(..all.len() - TOP_K);
        }
        self.topk = all;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` with no samples.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean sample value, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some(self.sum as f64 / self.total as f64)
    }

    /// The `q`-quantile by nearest rank (the [`crate::WakeupLatencies`]
    /// convention), or `None` with no samples.
    ///
    /// Ranks inside the top-`K` reservoir are exact; lower ranks return
    /// their bucket's upper bound, so the estimate `est` of an exact
    /// sample `x` satisfies `x ≤ est ≤ x·(1 + 1/16)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let from_top = self.total - rank;
        if (from_top as usize) < self.topk.len() {
            return Some(self.topk[self.topk.len() - 1 - from_top as usize]);
        }
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper(i));
            }
        }
        unreachable!("rank {rank} beyond recorded total {}", self.total)
    }

    /// Serializes the histogram for a snapshot.
    pub fn save(&self) -> Json {
        json::obj(vec![
            (
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::u64(c)).collect()),
            ),
            ("total", Json::u64(self.total)),
            ("sum", Json::u64(self.sum)),
            (
                "topk",
                Json::Arr(self.topk.iter().map(|&v| Json::u64(v)).collect()),
            ),
        ])
    }

    /// Rebuilds a histogram serialized by [`TailHistogram::save`].
    pub fn load(state: &Json) -> Result<TailHistogram, String> {
        let arr_u64 = |key: &str| -> Result<Vec<u64>, String> {
            snap::get_arr(state, key)?
                .iter()
                .map(snap::elem_u64)
                .collect()
        };
        let topk = arr_u64("topk")?;
        if topk.len() > TOP_K {
            return Err(format!(
                "histogram reservoir carries {} samples, the cap is {TOP_K}",
                topk.len()
            ));
        }
        if !topk.windows(2).all(|w| w[0] <= w[1]) {
            return Err("histogram reservoir is not sorted".to_string());
        }
        Ok(TailHistogram {
            counts: arr_u64("counts")?,
            total: snap::get_u64(state, "total")?,
            sum: snap::get_u64(state, "sum")?,
            topk,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent() {
        // Highest index: e = 63, sub = 15 → 975.
        assert_eq!(bucket_index(u64::MAX), 975);
        for v in [0, 1, 15, 16, 31, 32, 100, 4096, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "bucket {i} not minimal for {v}");
            }
        }
        // Small values are exact.
        for v in 0..32 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn small_sets_are_exact_via_reservoir() {
        let mut h = TailHistogram::default();
        for v in [9000, 17, 3, 123_456_789, 500] {
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.quantile(0.0), Some(3));
        assert_eq!(h.quantile(0.5), Some(500));
        assert_eq!(h.quantile(1.0), Some(123_456_789));
        assert_eq!(
            h.mean(),
            Some((9000 + 17 + 3 + 123_456_789 + 500) as f64 / 5.0)
        );
    }

    #[test]
    fn quantile_error_is_bounded() {
        // More samples than TOP_K so low quantiles exercise the
        // histogram path.
        let mut h = TailHistogram::default();
        let mut exact: Vec<u64> = Vec::new();
        let mut rng = nest_simcore::SimRng::new(99);
        for _ in 0..5000 {
            let v = rng.exponential(2_000_000.0) as u64;
            h.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let x = exact[rank - 1];
            let est = h.quantile(q).unwrap();
            assert!(est >= x, "q={q}: {est} < exact {x}");
            assert!(est <= x + x / 16 + 1, "q={q}: {est} too far above {x}");
        }
    }

    #[test]
    fn merge_is_order_independent_and_matches_single_stream() {
        let mut rng = nest_simcore::SimRng::new(7);
        let samples: Vec<u64> = (0..4000).map(|_| rng.uniform_u64(0, 50_000_000)).collect();
        let mut whole = TailHistogram::default();
        let mut a = TailHistogram::default();
        let mut b = TailHistogram::default();
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
    }

    #[test]
    fn empty_histogram_answers_none() {
        let h = TailHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
    }
}
