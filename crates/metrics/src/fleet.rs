//! Fleet-level (multi-host) serving metrics.
//!
//! The fleet co-simulation driver in `nest-core` counts the client's view
//! of a multi-host run — requests routed, retried, hedged, shed, timed
//! out — into a [`FleetMetrics`]: the mergeable aggregate written into
//! `.telemetry.json` as the `fleet_metrics` block (the `serve_metrics`
//! convention). [`FleetRunStats`] wraps one run's metrics together with
//! the goodput timeline the failover figure plots; [`FleetSummary`] is
//! the plain-scalar projection carried inside `RunSummary`, so fleet
//! figures work from the result cache.
//!
//! The *server-side* view (per-attempt work on each host) still flows
//! through the ordinary [`crate::ServeMetrics`] path: each host engine
//! carries its own serve probe and the driver merges them.

use nest_simcore::json::{obj, Json};

use crate::tail::TailHistogram;

/// Aggregated client-side fleet metrics over one or more runs.
///
/// Every count is an order-independent sum; `hosts` is identical across
/// the runs of one cell (first-wins on merge, like `ServeMetrics::slo_ns`)
/// and the per-host histograms merge element-wise.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetMetrics {
    /// Runs merged into this aggregate.
    pub runs: u64,
    /// Hosts in the fleet.
    pub hosts: u32,
    /// Requests that arrived at the balancer.
    pub offered: u64,
    /// Requests answered (first successful attempt completed).
    pub completed: u64,
    /// Requests that exhausted their retry budget without an answer.
    pub failed: u64,
    /// Requests shed by the SLO-aware brownout guard.
    pub shed: u64,
    /// Attempt timeouts observed by the client.
    pub timeouts: u64,
    /// Retry attempts dispatched.
    pub retries: u64,
    /// Hedged (duplicate) attempts dispatched.
    pub hedges: u64,
    /// Requests whose hedged attempt answered first.
    pub hedge_wins: u64,
    /// Attempt completions that arrived after the client had already
    /// resolved the request (hedge losers and post-timeout stragglers) —
    /// wasted server work.
    pub late_completions: u64,
    /// Host crashes injected.
    pub crashes: u64,
    /// Cold host restarts.
    pub restarts: u64,
    /// Attempts in flight on a host at the instant it crashed.
    pub in_flight_lost: u64,
    /// Restarted hosts whose primary nest regained its pre-crash size.
    pub warm_recoveries: u64,
    /// Total restart→warm time across those recoveries.
    pub time_to_warm_ns_total: u64,
    /// Total simulated nanoseconds across the merged runs (the fleet
    /// makespan per run).
    pub sim_ns: u64,
    /// Client-observed arrival→answer latency of completed requests.
    pub hist: TailHistogram,
    /// Per-host attempt latency (dispatch→completion on that host).
    pub host_hist: Vec<TailHistogram>,
}

impl FleetMetrics {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &FleetMetrics) {
        self.runs += other.runs;
        if self.hosts == 0 {
            self.hosts = other.hosts;
        }
        self.offered += other.offered;
        self.completed += other.completed;
        self.failed += other.failed;
        self.shed += other.shed;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.late_completions += other.late_completions;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        self.in_flight_lost += other.in_flight_lost;
        self.warm_recoveries += other.warm_recoveries;
        self.time_to_warm_ns_total += other.time_to_warm_ns_total;
        self.sim_ns += other.sim_ns;
        self.hist.merge(&other.hist);
        if self.host_hist.len() < other.host_hist.len() {
            self.host_hist
                .resize_with(other.host_hist.len(), TailHistogram::default);
        }
        for (mine, theirs) in self.host_hist.iter_mut().zip(&other.host_hist) {
            mine.merge(theirs);
        }
    }

    /// Simulated seconds across all runs.
    pub fn sim_secs(&self) -> f64 {
        self.sim_ns as f64 / 1e9
    }

    /// Answered requests per simulated second — the fleet's goodput.
    pub fn goodput_per_s(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.completed as f64 / self.sim_secs())
    }

    /// Retries per simulated second (the failover-pressure signal the
    /// `nest-sim diff` gate watches).
    pub fn retries_per_s(&self) -> Option<f64> {
        (self.sim_ns > 0).then(|| self.retries as f64 / self.sim_secs())
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> Option<f64> {
        (self.offered > 0).then(|| self.shed as f64 / self.offered as f64)
    }

    /// Mean restart→warm time, when any restart re-warmed.
    pub fn time_to_warm_ns(&self) -> Option<f64> {
        (self.warm_recoveries > 0)
            .then(|| self.time_to_warm_ns_total as f64 / self.warm_recoveries as f64)
    }

    /// Serializes the metrics as the `fleet_metrics` telemetry block.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("runs", Json::u64(self.runs)),
            ("sim_ns", Json::u64(self.sim_ns)),
            ("hosts", Json::u64(self.hosts as u64)),
            ("offered", Json::u64(self.offered)),
            ("completed", Json::u64(self.completed)),
            ("failed", Json::u64(self.failed)),
            ("shed", Json::u64(self.shed)),
            ("timeouts", Json::u64(self.timeouts)),
            ("retries", Json::u64(self.retries)),
            ("hedges", Json::u64(self.hedges)),
            ("hedge_wins", Json::u64(self.hedge_wins)),
            ("late_completions", Json::u64(self.late_completions)),
            ("crashes", Json::u64(self.crashes)),
            ("restarts", Json::u64(self.restarts)),
            ("in_flight_lost", Json::u64(self.in_flight_lost)),
            (
                "latency",
                obj(vec![
                    ("p50_ns", Json::opt_u64(self.hist.quantile(0.50))),
                    ("p99_ns", Json::opt_u64(self.hist.quantile(0.99))),
                    ("p999_ns", Json::opt_u64(self.hist.quantile(0.999))),
                    ("mean_ns", Json::opt_f64(self.hist.mean())),
                    ("samples", Json::u64(self.hist.len())),
                ]),
            ),
            ("goodput_per_s", Json::opt_f64(self.goodput_per_s())),
            ("retries_per_s", Json::opt_f64(self.retries_per_s())),
            ("shed_rate", Json::opt_f64(self.shed_rate())),
            ("time_to_warm_ns", Json::opt_f64(self.time_to_warm_ns())),
            (
                "per_host",
                Json::Arr(
                    self.host_hist
                        .iter()
                        .map(|h| {
                            obj(vec![
                                ("p50_ns", Json::opt_u64(h.quantile(0.50))),
                                ("p99_ns", Json::opt_u64(h.quantile(0.99))),
                                ("samples", Json::u64(h.len())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One goodput-timeline window: how many requests arrived in the window
/// and how many were answered in it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetWindow {
    /// Requests that arrived at the balancer during the window.
    pub arrived: u64,
    /// Requests answered during the window.
    pub ok: u64,
}

/// One fleet run's full statistics: the mergeable metrics plus the
/// goodput timeline (per-run only — timelines of different runs do not
/// merge meaningfully).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetRunStats {
    /// The mergeable client-side counters.
    pub metrics: FleetMetrics,
    /// Timeline bucket width in nanoseconds.
    pub timeline_window_ns: u64,
    /// Goodput timeline: one entry per window from run start.
    pub timeline: Vec<FleetWindow>,
}

/// Plain-scalar projection of one fleet run, carried inside `RunSummary`
/// (and therefore the result cache and figure artifacts).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetSummary {
    /// Hosts in the fleet.
    pub hosts: u32,
    /// Requests that arrived at the balancer.
    pub offered: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
    /// Requests shed.
    pub shed: u64,
    /// Attempt timeouts.
    pub timeouts: u64,
    /// Retries dispatched.
    pub retries: u64,
    /// Hedges dispatched.
    pub hedges: u64,
    /// Requests won by the hedged attempt.
    pub hedge_wins: u64,
    /// Host crashes injected.
    pub crashes: u64,
    /// Cold restarts.
    pub restarts: u64,
    /// Median client latency.
    pub p50_ns: Option<u64>,
    /// 99th-percentile client latency.
    pub p99_ns: Option<u64>,
    /// 99.9th-percentile client latency.
    pub p999_ns: Option<u64>,
    /// Mean client latency.
    pub mean_ns: Option<f64>,
    /// Answered requests per simulated second.
    pub goodput_per_s: Option<f64>,
    /// Mean restart→warm seconds, when a restart re-warmed.
    pub time_to_warm_s: Option<f64>,
    /// Timeline bucket width in nanoseconds.
    pub timeline_window_ns: u64,
    /// Goodput timeline as `(arrived, ok)` pairs per window.
    pub timeline: Vec<(u64, u64)>,
}

impl FleetSummary {
    /// Projects a single run's stats down to summary scalars.
    pub fn from_stats(s: &FleetRunStats) -> FleetSummary {
        let m = &s.metrics;
        FleetSummary {
            hosts: m.hosts,
            offered: m.offered,
            completed: m.completed,
            failed: m.failed,
            shed: m.shed,
            timeouts: m.timeouts,
            retries: m.retries,
            hedges: m.hedges,
            hedge_wins: m.hedge_wins,
            crashes: m.crashes,
            restarts: m.restarts,
            p50_ns: m.hist.quantile(0.50),
            p99_ns: m.hist.quantile(0.99),
            p999_ns: m.hist.quantile(0.999),
            mean_ns: m.hist.mean(),
            goodput_per_s: m.goodput_per_s(),
            time_to_warm_s: m.time_to_warm_ns().map(|ns| ns / 1e9),
            timeline_window_ns: s.timeline_window_ns,
            timeline: s.timeline.iter().map(|w| (w.arrived, w.ok)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetMetrics {
        let mut m = FleetMetrics {
            runs: 1,
            hosts: 4,
            offered: 100,
            completed: 95,
            failed: 2,
            shed: 3,
            timeouts: 9,
            retries: 7,
            hedges: 5,
            hedge_wins: 2,
            late_completions: 4,
            crashes: 1,
            restarts: 1,
            in_flight_lost: 6,
            warm_recoveries: 1,
            time_to_warm_ns_total: 80_000_000,
            sim_ns: 1_000_000_000,
            ..FleetMetrics::default()
        };
        m.hist.record(1_000_000);
        m.hist.record(4_000_000);
        m.host_hist = vec![TailHistogram::default(); 4];
        m.host_hist[1].record(2_000_000);
        m
    }

    #[test]
    fn derived_rates() {
        let m = sample();
        assert_eq!(m.goodput_per_s(), Some(95.0));
        assert_eq!(m.retries_per_s(), Some(7.0));
        assert_eq!(m.shed_rate(), Some(0.03));
        assert_eq!(m.time_to_warm_ns(), Some(80_000_000.0));
        assert_eq!(FleetMetrics::default().goodput_per_s(), None);
        assert_eq!(FleetMetrics::default().shed_rate(), None);
    }

    #[test]
    fn merge_is_order_independent() {
        let a = sample();
        let mut b = sample();
        b.hist.record(9_000_000);
        b.host_hist.push(TailHistogram::default());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.runs, 2);
        assert_eq!(ab.offered, 200);
        assert_eq!(ab.hosts, 4, "host count is first-wins");
        assert_eq!(ab.host_hist.len(), 5, "per-host histograms pad");
    }

    #[test]
    fn json_block_has_the_gate_fields_and_round_trips() {
        let json = sample().to_json();
        for key in [
            "runs",
            "sim_ns",
            "hosts",
            "offered",
            "completed",
            "failed",
            "shed",
            "timeouts",
            "retries",
            "hedges",
            "hedge_wins",
            "late_completions",
            "crashes",
            "restarts",
            "in_flight_lost",
            "latency",
            "goodput_per_s",
            "retries_per_s",
            "shed_rate",
            "time_to_warm_ns",
            "per_host",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let text = json.to_pretty();
        assert_eq!(nest_simcore::json::parse(&text).unwrap(), json);
    }

    #[test]
    fn summary_projects_scalars_and_timeline() {
        let stats = FleetRunStats {
            metrics: sample(),
            timeline_window_ns: 50_000_000,
            timeline: vec![
                FleetWindow { arrived: 10, ok: 9 },
                FleetWindow { arrived: 12, ok: 4 },
            ],
        };
        let s = FleetSummary::from_stats(&stats);
        assert_eq!(s.hosts, 4);
        assert_eq!(s.completed, 95);
        assert_eq!(s.p999_ns, Some(4_000_000));
        assert_eq!(s.goodput_per_s, Some(95.0));
        assert_eq!(s.time_to_warm_s, Some(0.08));
        assert_eq!(s.timeline, vec![(10, 9), (12, 4)]);
    }
}
