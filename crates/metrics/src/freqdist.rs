//! Frequency-residency distributions (Figures 2, 6, 8, 11).
//!
//! For every moment a core is busy, the time is attributed to the bucket
//! of that core's current frequency; bucket edges are the per-machine
//! ranges the paper's figures use (e.g. `(0,1.0] (1.0,1.6] … (3.4,3.7]`
//! GHz on the 6130).

use std::cell::RefCell;
use std::rc::Rc;

use nest_simcore::json::{self, Json};
use nest_simcore::{snap, Freq, Probe, Time, TraceEvent};

/// Registry kind under which [`FreqResidencyProbe`] snapshots itself.
pub const FREQ_RESIDENCY_PROBE_KIND: &str = "metrics.freq_residency";

/// Residency histogram; obtain via [`FreqResidencyProbe::new`].
#[derive(Debug, Default)]
pub struct FreqResidency {
    /// Bucket upper edges in GHz.
    pub edges_ghz: Vec<f64>,
    /// Busy nanoseconds attributed to each bucket.
    pub busy_ns: Vec<u64>,
}

impl FreqResidency {
    /// Total busy time across all buckets.
    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Fraction of busy time per bucket (sums to 1 when any work ran).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total_busy_ns();
        if total == 0 {
            return vec![0.0; self.busy_ns.len()];
        }
        self.busy_ns
            .iter()
            .map(|&ns| ns as f64 / total as f64)
            .collect()
    }

    /// Fraction of busy time spent in the top `n` buckets.
    pub fn top_fraction(&self, n: usize) -> f64 {
        let f = self.fractions();
        f.iter().rev().take(n).sum()
    }

    /// Renders bucket labels like `(1.0, 1.6]`.
    pub fn labels(&self) -> Vec<String> {
        let mut lo = 0.0;
        self.edges_ghz
            .iter()
            .map(|&hi| {
                let s = format!("({lo:.1}, {hi:.1}]");
                lo = hi;
                s
            })
            .collect()
    }
}

/// Probe accumulating busy time per frequency bucket.
pub struct FreqResidencyProbe {
    data: Rc<RefCell<FreqResidency>>,
    edges_khz: Vec<u64>,
    busy: Vec<bool>,
    freq: Vec<Freq>,
    since: Vec<Time>,
    acc: Vec<u64>,
}

impl FreqResidencyProbe {
    /// Creates the probe for a machine with `n_cores` cores and the given
    /// bucket edges (GHz), with all cores initially at `initial` frequency.
    pub fn new(
        n_cores: usize,
        edges_ghz: &[f64],
        initial: Freq,
    ) -> (FreqResidencyProbe, Rc<RefCell<FreqResidency>>) {
        assert!(!edges_ghz.is_empty(), "need at least one bucket");
        let data = Rc::new(RefCell::new(FreqResidency {
            edges_ghz: edges_ghz.to_vec(),
            busy_ns: vec![0; edges_ghz.len()],
        }));
        (
            FreqResidencyProbe {
                data: Rc::clone(&data),
                edges_khz: edges_ghz
                    .iter()
                    .map(|g| (g * 1_000_000.0).round() as u64)
                    .collect(),
                busy: vec![false; n_cores],
                freq: vec![initial; n_cores],
                since: vec![Time::ZERO; n_cores],
                acc: vec![0; edges_ghz.len()],
            },
            data,
        )
    }

    fn bucket(&self, f: Freq) -> usize {
        let khz = f.as_khz();
        for (i, &edge) in self.edges_khz.iter().enumerate() {
            if khz <= edge {
                return i;
            }
        }
        self.edges_khz.len() - 1
    }

    fn settle(&mut self, core: usize, now: Time) {
        if self.busy[core] {
            let b = self.bucket(self.freq[core]);
            self.acc[b] += now.saturating_since(self.since[core]);
        }
        self.since[core] = now;
    }
}

impl Probe for FreqResidencyProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        match event {
            TraceEvent::RunStart { core, .. } => {
                let c = core.index();
                self.settle(c, now);
                self.busy[c] = true;
            }
            TraceEvent::RunStop { core, .. } => {
                let c = core.index();
                self.settle(c, now);
                self.busy[c] = false;
            }
            TraceEvent::FreqChange { core, freq } => {
                let c = core.index();
                self.settle(c, now);
                self.freq[c] = *freq;
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, now: Time) {
        for c in 0..self.busy.len() {
            self.settle(c, now);
        }
        let mut d = self.data.borrow_mut();
        d.busy_ns = self.acc.clone();
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        // Bucket edges come from construction; only the accumulators and
        // per-core tracking travel.
        Some((
            FREQ_RESIDENCY_PROBE_KIND,
            json::obj(vec![
                (
                    "busy",
                    Json::Arr(self.busy.iter().map(|&b| Json::Bool(b)).collect()),
                ),
                (
                    "freq_khz",
                    Json::Arr(self.freq.iter().map(|f| Json::u64(f.as_khz())).collect()),
                ),
                (
                    "since",
                    Json::Arr(self.since.iter().map(|&t| snap::time_json(t)).collect()),
                ),
                (
                    "acc",
                    Json::Arr(self.acc.iter().map(|&ns| Json::u64(ns)).collect()),
                ),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        let expect = |name: &str, got: usize, want: usize| -> Result<(), String> {
            if got != want {
                return Err(format!(
                    "freq-residency snapshot \"{name}\" has {got} entries, expected {want}"
                ));
            }
            Ok(())
        };
        let busy = snap::get_arr(state, "busy")?;
        expect("busy", busy.len(), self.busy.len())?;
        for (slot, b) in self.busy.iter_mut().zip(busy) {
            *slot = b.as_bool().ok_or("busy entry is not a bool")?;
        }
        let freq = snap::get_arr(state, "freq_khz")?;
        expect("freq_khz", freq.len(), self.freq.len())?;
        for (slot, f) in self.freq.iter_mut().zip(freq) {
            *slot = Freq::from_khz(snap::elem_u64(f)?);
        }
        let since = snap::get_arr(state, "since")?;
        expect("since", since.len(), self.since.len())?;
        for (slot, t) in self.since.iter_mut().zip(since) {
            *slot = Time::from_nanos(snap::elem_u64(t)?);
        }
        let acc = snap::get_arr(state, "acc")?;
        expect("acc", acc.len(), self.acc.len())?;
        for (slot, a) in self.acc.iter_mut().zip(acc) {
            *slot = snap::elem_u64(a)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::{CoreId, StopReason, TaskId};

    fn probe() -> (FreqResidencyProbe, Rc<RefCell<FreqResidency>>) {
        FreqResidencyProbe::new(4, &[1.0, 2.0, 3.0], Freq::from_ghz(1.0))
    }

    #[test]
    fn attributes_busy_time_to_bucket() {
        let (mut p, d) = probe();
        p.on_event(
            Time::ZERO,
            &TraceEvent::RunStart {
                task: TaskId(0),
                core: CoreId(0),
            },
        );
        p.on_event(
            Time::from_millis(10),
            &TraceEvent::RunStop {
                task: TaskId(0),
                core: CoreId(0),
                reason: StopReason::Block,
            },
        );
        p.on_finish(Time::from_millis(20));
        let d = d.borrow();
        assert_eq!(d.busy_ns[0], 10_000_000);
        assert_eq!(d.total_busy_ns(), 10_000_000);
    }

    #[test]
    fn freq_change_splits_attribution() {
        let (mut p, d) = probe();
        p.on_event(
            Time::ZERO,
            &TraceEvent::RunStart {
                task: TaskId(0),
                core: CoreId(1),
            },
        );
        p.on_event(
            Time::from_millis(4),
            &TraceEvent::FreqChange {
                core: CoreId(1),
                freq: Freq::from_ghz(2.5),
            },
        );
        p.on_event(
            Time::from_millis(10),
            &TraceEvent::RunStop {
                task: TaskId(0),
                core: CoreId(1),
                reason: StopReason::Exit,
            },
        );
        p.on_finish(Time::from_millis(10));
        let d = d.borrow();
        assert_eq!(d.busy_ns[0], 4_000_000, "1.0 GHz portion");
        assert_eq!(d.busy_ns[2], 6_000_000, "2.5 GHz lands in (2,3]");
        let f = d.fractions();
        assert!((f[0] - 0.4).abs() < 1e-9);
        assert!((f[2] - 0.6).abs() < 1e-9);
        assert!((d.top_fraction(1) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn idle_time_not_counted() {
        let (mut p, d) = probe();
        p.on_event(
            Time::from_millis(5),
            &TraceEvent::FreqChange {
                core: CoreId(0),
                freq: Freq::from_ghz(3.0),
            },
        );
        p.on_finish(Time::from_millis(50));
        assert_eq!(d.borrow().total_busy_ns(), 0);
    }

    #[test]
    fn above_top_edge_clamps_to_last_bucket() {
        let (mut p, d) = probe();
        p.on_event(
            Time::ZERO,
            &TraceEvent::FreqChange {
                core: CoreId(0),
                freq: Freq::from_ghz(9.9),
            },
        );
        p.on_event(
            Time::ZERO,
            &TraceEvent::RunStart {
                task: TaskId(0),
                core: CoreId(0),
            },
        );
        p.on_finish(Time::from_millis(1));
        assert_eq!(d.borrow().busy_ns[2], 1_000_000);
    }

    #[test]
    fn labels_render_ranges() {
        let (_p, d) = probe();
        assert_eq!(
            d.borrow().labels(),
            vec!["(0.0, 1.0]", "(1.0, 2.0]", "(2.0, 3.0]"]
        );
    }
}
