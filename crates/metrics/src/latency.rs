//! Wakeup-latency measurement (schbench-style, §5.6).
//!
//! Records the delay between a task becoming runnable ([`TraceEvent::Woken`])
//! and it actually starting to run ([`TraceEvent::RunStart`]), and computes
//! percentiles including the 99.9th that schbench reports.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nest_simcore::json::{self, Json};
use nest_simcore::{snap, Probe, TaskId, Time, TraceEvent};

/// Registry kind under which [`WakeupLatencyProbe`] snapshots itself.
pub const WAKEUP_LATENCY_PROBE_KIND: &str = "metrics.wakeup_latency";

/// Collected wakeup latencies; obtain via [`WakeupLatencyProbe::new`].
#[derive(Debug, Default)]
pub struct WakeupLatencies {
    /// All observed latencies in nanoseconds (unordered).
    pub samples: Vec<u64>,
}

impl WakeupLatencies {
    /// Returns the `q`-quantile (0 ≤ q ≤ 1) by nearest-rank, or `None`
    /// with no samples.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let mut v = self.samples.clone();
        v.sort_unstable();
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        Some(v[rank - 1])
    }

    /// Median latency.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// 99.9th percentile — schbench's headline metric.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }

    /// Mean latency in nanoseconds.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
    }
}

/// Probe pairing wakeups with run starts.
pub struct WakeupLatencyProbe {
    data: Rc<RefCell<WakeupLatencies>>,
    pending: HashMap<TaskId, Time>,
    samples: Vec<u64>,
}

impl WakeupLatencyProbe {
    /// Creates the probe and its shared result handle.
    pub fn new() -> (WakeupLatencyProbe, Rc<RefCell<WakeupLatencies>>) {
        let data = Rc::new(RefCell::new(WakeupLatencies::default()));
        (
            WakeupLatencyProbe {
                data: Rc::clone(&data),
                pending: HashMap::new(),
                samples: Vec::new(),
            },
            data,
        )
    }
}

impl Probe for WakeupLatencyProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        match event {
            TraceEvent::Woken { task } => {
                self.pending.insert(*task, now);
            }
            TraceEvent::RunStart { task, .. } => {
                if let Some(woken) = self.pending.remove(task) {
                    self.samples.push(now.saturating_since(woken));
                }
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, _now: Time) {
        self.data.borrow_mut().samples = std::mem::take(&mut self.samples);
    }

    fn snap(&self) -> Option<(&'static str, Json)> {
        // The pending map is sorted by task id so the snapshot bytes are
        // independent of HashMap iteration order.
        let mut pending: Vec<(&TaskId, &Time)> = self.pending.iter().collect();
        pending.sort_by_key(|(task, _)| task.0);
        Some((
            WAKEUP_LATENCY_PROBE_KIND,
            json::obj(vec![
                (
                    "pending",
                    Json::Arr(
                        pending
                            .into_iter()
                            .map(|(task, &at)| {
                                Json::Arr(vec![Json::u64(task.0 as u64), snap::time_json(at)])
                            })
                            .collect(),
                    ),
                ),
                (
                    "samples",
                    Json::Arr(self.samples.iter().map(|&ns| Json::u64(ns)).collect()),
                ),
            ]),
        ))
    }

    fn snap_restore(&mut self, state: &Json) -> Result<(), String> {
        self.pending.clear();
        for pair in snap::get_arr(state, "pending")? {
            let items = pair.as_arr().ok_or("pending entry is not a pair")?;
            if items.len() != 2 {
                return Err("pending entry is not a [task, time] pair".to_string());
            }
            self.pending.insert(
                TaskId(snap::elem_u64(&items[0])? as u32),
                Time::from_nanos(snap::elem_u64(&items[1])?),
            );
        }
        self.samples = snap::get_arr(state, "samples")?
            .iter()
            .map(snap::elem_u64)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_simcore::CoreId;

    #[test]
    fn pairs_woken_with_run_start() {
        let (mut p, d) = WakeupLatencyProbe::new();
        p.on_event(
            Time::from_nanos(100),
            &TraceEvent::Woken { task: TaskId(1) },
        );
        p.on_event(
            Time::from_nanos(350),
            &TraceEvent::RunStart {
                task: TaskId(1),
                core: CoreId(0),
            },
        );
        p.on_finish(Time::from_nanos(400));
        assert_eq!(d.borrow().samples, vec![250]);
    }

    #[test]
    fn run_start_without_wake_ignored() {
        let (mut p, d) = WakeupLatencyProbe::new();
        p.on_event(
            Time::from_nanos(350),
            &TraceEvent::RunStart {
                task: TaskId(1),
                core: CoreId(0),
            },
        );
        p.on_finish(Time::from_nanos(400));
        assert!(d.borrow().samples.is_empty());
        assert_eq!(d.borrow().p999(), None);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let l = WakeupLatencies {
            samples: (1..=1000).collect(),
        };
        assert_eq!(l.p50(), Some(500));
        assert_eq!(l.p99(), Some(990));
        assert_eq!(l.p999(), Some(999));
        assert_eq!(l.quantile(1.0), Some(1000));
        assert!((l.mean().unwrap() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn repeated_wakeups_produce_multiple_samples() {
        let (mut p, d) = WakeupLatencyProbe::new();
        for i in 0..5u64 {
            let t0 = Time::from_nanos(i * 1000);
            p.on_event(t0, &TraceEvent::Woken { task: TaskId(7) });
            p.on_event(
                t0 + 10 * (i + 1),
                &TraceEvent::RunStart {
                    task: TaskId(7),
                    core: CoreId(0),
                },
            );
        }
        p.on_finish(Time::from_nanos(10_000));
        assert_eq!(d.borrow().samples.len(), 5);
    }
}
