//! Phase-sum identity: for every serving run, the per-phase latency
//! durations must sum *exactly* (in nanoseconds) to the measured
//! wakeup-to-completion latency — no rounding slack, no lost slices.
//!
//! The probe enforces the identity per request and counts violations;
//! these tests sweep service distributions (deterministic, exponential,
//! bimodal), fan-out shapes, and all three policies, and assert the
//! violation count stays zero while the aggregate histogram sums match
//! to the nanosecond.

use nest_core::{presets, run_once, PolicyKind, RunResult, SimConfig};
use nest_metrics::N_PHASES;
use nest_serve::ServiceDist;
use nest_workloads::{ServeLoad, ServeSpec};

const POLICIES: [PolicyKind; 3] = [PolicyKind::Cfs, PolicyKind::Nest, PolicyKind::Smove];

fn serve_run(policy: PolicyKind, dist: ServiceDist, fanout: u32) -> RunResult {
    let spec = ServeSpec {
        rate: 1_500.0,
        requests: 150,
        dist,
        service_ms: 0.4,
        fanout,
        ..ServeSpec::default()
    };
    let cfg = SimConfig::new(presets::xeon_5218()).policy(policy);
    run_once(&cfg, &ServeLoad::new(spec))
}

/// The identity, stated on the aggregates: every request was checked
/// individually by the probe (violations == 0), and the histogram sums
/// agree exactly so no nanosecond leaked between phases.
fn assert_identity(r: &RunResult, label: &str) {
    assert_eq!(r.phases.runs, 1, "{label}: one attributed run");
    assert_eq!(
        r.phases.requests, r.serve.completed,
        "{label}: every completed request is attributed"
    );
    assert!(r.phases.requests > 0, "{label}: requests completed");
    assert_eq!(
        r.phases.identity_violations, 0,
        "{label}: per-request phase sums equal measured latency"
    );
    let phase_sum: u64 = (0..N_PHASES).map(|i| r.phases.phases[i].sum).sum();
    assert_eq!(
        r.phases.total.sum, phase_sum,
        "{label}: aggregate phase durations sum exactly to total latency"
    );
    assert_eq!(
        r.phases.total.sum, r.serve.hist.sum,
        "{label}: attributed total matches the serve latency histogram"
    );
}

#[test]
fn identity_holds_for_each_service_distribution() {
    for dist in [ServiceDist::Det, ServiceDist::Exp, ServiceDist::Bimodal] {
        for policy in &POLICIES {
            let r = serve_run(policy.clone(), dist, 0);
            assert_identity(&r, &format!("{dist:?}/{policy:?}"));
        }
    }
}

#[test]
fn identity_holds_for_fanout_requests() {
    // Fan-out requests add the merge-wait phase: the parent's latency
    // extends until the slowest shard finishes, and that wait must be
    // attributed, not lost.
    for policy in &POLICIES {
        let r = serve_run(policy.clone(), ServiceDist::Exp, 3);
        assert_identity(&r, &format!("fanout=3/{policy:?}"));
        let merge = nest_metrics::PHASE_NAMES
            .iter()
            .position(|&n| n == "merge_wait")
            .expect("merge phase exists");
        assert!(
            !r.phases.phases[merge].is_empty(),
            "fanout runs record merge waits ({policy:?})"
        );
    }
}

#[test]
fn ramp_penalty_is_attributed_under_cold_starts() {
    // A deterministic stream on CFS disperses wakeups onto cold cores,
    // so some latency must land in the ramp-penalty phase — the slice
    // fig_attribution shows shrinking under Nest.
    let r = serve_run(PolicyKind::Cfs, ServiceDist::Det, 0);
    assert_identity(&r, "ramp/Cfs");
    let ramp = nest_metrics::PHASE_NAMES
        .iter()
        .position(|&n| n == "ramp_penalty")
        .expect("ramp phase exists");
    assert!(
        r.phases.phases[ramp].sum > 0,
        "cold-core wakeups pay a measurable ramp penalty"
    );
}
