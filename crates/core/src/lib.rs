#![deny(missing_docs)]

//! Public API of the Nest scheduler simulation.
//!
//! This crate ties the substrates together behind a small surface:
//!
//! * [`SimConfig`] — machine + policy + governor + seed;
//! * [`run_once`] / [`run_many`] — execute a workload, returning
//!   [`RunResult`]s with the paper's metrics attached;
//! * [`experiment`] — multi-run comparisons with speedups and standard
//!   deviations computed the way §5.1 specifies.
//!
//! # Examples
//!
//! ```
//! use nest_core::{PolicyKind, SimConfig, run_once};
//! use nest_core::Governor;
//! use nest_core::presets;
//! use nest_workloads::configure::Configure;
//!
//! let cfg = SimConfig::new(presets::xeon_5218())
//!     .policy(PolicyKind::Nest)
//!     .governor(Governor::Schedutil);
//! let result = run_once(&cfg, &Configure::named("gdb"));
//! assert!(result.time_s > 0.0);
//! ```

pub mod experiment;
pub mod fleet;
pub mod sim;
pub mod snapshot;

pub use experiment::{compare_schedulers, Comparison, SchedulerSetup};
pub use sim::{run_many, run_once, run_once_with, run_seed, PolicyKind, RunResult, SimConfig};
pub use snapshot::{
    behavior_registry, read_header, restore, run_until, PausedSim, Progress, SnapError,
    SnapshotHeader, SNAPSHOT_SCHEMA,
};

pub use nest_metrics::RunSummary;

pub use nest_engine::{Engine, EngineConfig, RunOutcome};
pub use nest_freq::Governor;
pub use nest_sched::{CfsParams, NestParams, SmoveParams};
pub use nest_topology::{presets, MachineSpec, Topology};
pub use nest_workloads::Workload;
