//! Checkpoint and restore of whole simulations.
//!
//! A snapshot captures *everything* a run will ever read again — clock,
//! event queue, kernel and policy state, frequency model, per-task
//! behaviour cursors and RNG streams, synchronization objects, and the
//! standard probe rig — so that
//!
//! > run to the end  ≡  pause at `T`, snapshot, restore, continue
//!
//! holds **byte-for-byte** on every artifact and telemetry field. The
//! document is the in-tree JSON codec (`DESIGN.md` §4.7 specifies the
//! format): a [`SnapshotHeader`] carrying the schema version, the
//! scenario identity, and an FNV checksum of the body, an opaque
//! `scenario` block the CLI uses to rebuild configs, and the engine body.
//! Restoring onto the wrong scenario, a different schema, or a corrupted
//! body fails loudly with a typed [`SnapError`].
//!
//! Three entry points:
//!
//! * [`run_until`] — run a fresh simulation, pausing once every event at
//!   `t <= pause_at` has been dispatched;
//! * [`PausedSim::snapshot`] — serialize the paused simulation;
//! * [`restore`] — rebuild a paused simulation from snapshot text and
//!   [`PausedSim::resume`] it to completion.
//!
//! Restoring with a *different* fault plan than the snapshot's is the
//! supported "branching what-if" mode: the pending fault events are
//! replaced by the override plan's (scheduled no earlier than the pause
//! point) while everything else continues unchanged, so a faulted and a
//! fault-free future can be compared from one shared warm prefix.

use std::fmt;

use nest_simcore::json::{self, Json};
use nest_simcore::rng::hash_str;
use nest_simcore::snap;
use nest_simcore::{BehaviorRegistry, Time};
use nest_workloads::Workload;

use crate::sim::{build_engine, collect_result, setup_workload, ProbeRig, RunResult, SimConfig};
use nest_engine::Engine;

/// Version of the snapshot container format. Bumped on any change to
/// the serialized layout; restore refuses other versions.
///
/// v2: hierarchical scheduling domains — the kernel state carries a
/// per-CCX statistics cache alongside the per-socket one, and the
/// frequency model keys its active-core windows by turbo domain.
///
/// v3: latency attribution — the standard probe rig grew the
/// time-series sampler (always) and the per-request phase-breakdown
/// probe (serving runs), both of which serialize their in-flight state
/// into the probe block.
pub const SNAPSHOT_SCHEMA: u64 = 3;

/// Key of the header block inside a snapshot document.
const HEADER_KEY: &str = "nest_snapshot";

/// Why a snapshot could not be written or restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The text is not a snapshot document (bad JSON, missing fields).
    Parse(String),
    /// The snapshot was written under a different container schema.
    SchemaMismatch {
        /// Schema version recorded in the file.
        found: u64,
        /// Schema version this build reads ([`SNAPSHOT_SCHEMA`]).
        expect: u64,
    },
    /// The snapshot captures a different scenario than the restore
    /// target (machine, policy, workload, seed, … differ).
    IdentityMismatch {
        /// Identity recorded in the file.
        found: String,
        /// Identity of the scenario being restored onto.
        expect: String,
    },
    /// The body does not hash to the header's checksum — the file was
    /// truncated or edited.
    ChecksumMismatch {
        /// Checksum of the body as read.
        found: String,
        /// Checksum recorded in the header.
        expect: String,
    },
    /// The body is structurally valid but describes impossible state
    /// (unknown behaviour kind, core out of range, probe rig mismatch),
    /// or the live simulation contains unsnapshotable parts.
    State(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Parse(e) => write!(f, "not a snapshot document: {e}"),
            SnapError::SchemaMismatch { found, expect } => write!(
                f,
                "snapshot schema v{found} is not readable by this build (expects v{expect})"
            ),
            SnapError::IdentityMismatch { found, expect } => write!(
                f,
                "snapshot was taken from a different scenario:\n  snapshot: {found}\n  restore:  {expect}"
            ),
            SnapError::ChecksumMismatch { found, expect } => write!(
                f,
                "snapshot body is corrupted: checksum {found}, header records {expect}"
            ),
            SnapError::State(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// The versioned header of a snapshot document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Container schema version ([`SNAPSHOT_SCHEMA`]).
    pub schema: u64,
    /// Canonical identity of the captured scenario/config.
    pub identity: String,
    /// Simulated time of the pause point, in nanoseconds.
    pub at_ns: u64,
    /// Events dispatched up to the pause point — exactly the work a
    /// restore skips.
    pub events: u64,
    /// FNV-1a/SplitMix digest of the pretty-printed body, hex.
    pub checksum: String,
}

/// Builds the full behaviour-restore registry: simcore's script
/// behaviour plus every engine, serving, and workload behaviour kind.
/// Anything [`Engine::snapshot`] can emit, this registry can revive.
pub fn behavior_registry() -> BehaviorRegistry {
    let mut reg = BehaviorRegistry::new();
    nest_engine::register_behaviors(&mut reg);
    nest_serve::register_behaviors(&mut reg);
    nest_workloads::register_behaviors(&mut reg);
    reg
}

/// Digest of a snapshot body: FNV-1a over the pretty-printed text,
/// SplitMix-finalized, rendered as 16 hex digits.
fn body_checksum(body_text: &str) -> String {
    format!("{:016x}", hash_str(body_text))
}

/// Either a finished run or a simulation paused mid-flight.
pub enum Progress {
    /// The run ended at or before the pause point.
    Done(Box<RunResult>),
    /// Paused with events still pending: snapshot and/or resume.
    Paused(Box<PausedSim>),
}

/// A simulation paused at a [`run_until`] boundary (or rebuilt by
/// [`restore`]): every event at `t <= pause_at` dispatched, the next
/// event still queued.
pub struct PausedSim {
    engine: Engine,
    rig: ProbeRig,
}

impl PausedSim {
    /// Simulated time reached by the pause.
    pub fn now(&self) -> Time {
        self.engine.now()
    }

    /// Events dispatched so far (cumulative across restores).
    pub fn events_dispatched(&self) -> u64 {
        self.engine.events_dispatched()
    }

    /// Serializes the paused simulation into snapshot text.
    ///
    /// `identity` is the canonical scenario/config identity restore will
    /// insist on; `scenario` is an opaque block stored verbatim (the CLI
    /// embeds the scenario JSON so `nest-sim replay --from` can rebuild
    /// the config without re-specified flags; pass `Json::Null` when
    /// there is nothing to embed).
    ///
    /// Fails with [`SnapError::State`] — naming the offender — if any
    /// live behaviour or attached probe does not support snapshots
    /// (e.g. the execution-trace probe of `--trace` runs).
    pub fn snapshot(&self, identity: &str, scenario: Json) -> Result<String, SnapError> {
        let body = self.engine.snapshot().map_err(SnapError::State)?;
        let body_text = body.to_pretty();
        let header = json::obj(vec![
            ("schema", Json::u64(SNAPSHOT_SCHEMA)),
            ("identity", Json::str(identity)),
            ("at_ns", snap::time_json(self.engine.now())),
            ("events", Json::u64(self.engine.events_dispatched())),
            ("checksum", Json::str(&body_checksum(&body_text))),
        ]);
        let doc = json::obj(vec![
            (HEADER_KEY, header),
            ("scenario", scenario),
            ("body", body),
        ]);
        Ok(doc.to_pretty())
    }

    /// Resumes the paused simulation to completion.
    pub fn resume(self) -> RunResult {
        let PausedSim { mut engine, rig } = self;
        let outcome = engine.resume();
        collect_result(&outcome, rig)
    }
}

/// Runs `workload` under `cfg` until the next pending event lies
/// strictly after `pause_at`. Returns [`Progress::Paused`] at the
/// boundary, or [`Progress::Done`] if the run finished first.
///
/// The pause is a pure observation point: resuming (with or without a
/// snapshot/restore round-trip in between) dispatches exactly the event
/// sequence an uninterrupted [`crate::run_once`] would, so results are
/// byte-identical.
pub fn run_until(cfg: &SimConfig, workload: &dyn Workload, pause_at: Time) -> Progress {
    // Fleet runs are not snapshotable (keepalive host engines refuse to
    // serialize); run the whole fleet and report it as already done, so
    // warm starts and replay degrade gracefully instead of panicking.
    if let Some(fleet) = workload.fleet_spec() {
        let result = crate::fleet::run_fleet(cfg, workload, &fleet, Vec::new());
        return Progress::Done(Box::new(result));
    }
    let slos = workload.serve_specs().iter().map(|s| s.slo_ns).collect();
    let (mut engine, rig) = build_engine(cfg, slos, Vec::new());
    setup_workload(&mut engine, cfg, workload);
    match engine.run_to(pause_at) {
        Some(outcome) => Progress::Done(Box::new(collect_result(&outcome, rig))),
        None => Progress::Paused(Box::new(PausedSim { engine, rig })),
    }
}

/// Parses and validates a snapshot's header (schema and checksum, not
/// identity), returning it with the embedded scenario block. Cheap
/// relative to [`restore`]; the CLI uses it to rebuild the scenario
/// before deciding the restore config.
pub fn read_header(text: &str) -> Result<(SnapshotHeader, Json), SnapError> {
    let doc = json::parse(text).map_err(SnapError::Parse)?;
    let header = doc
        .get(HEADER_KEY)
        .ok_or_else(|| SnapError::Parse(format!("missing \"{HEADER_KEY}\" header block")))?;
    let schema = snap::get_u64(header, "schema").map_err(SnapError::Parse)?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(SnapError::SchemaMismatch {
            found: schema,
            expect: SNAPSHOT_SCHEMA,
        });
    }
    let parsed = SnapshotHeader {
        schema,
        identity: snap::get_str(header, "identity")
            .map_err(SnapError::Parse)?
            .to_string(),
        at_ns: snap::get_time(header, "at_ns")
            .map_err(SnapError::Parse)?
            .as_nanos(),
        events: snap::get_u64(header, "events").map_err(SnapError::Parse)?,
        checksum: snap::get_str(header, "checksum")
            .map_err(SnapError::Parse)?
            .to_string(),
    };
    let body = doc
        .get("body")
        .ok_or_else(|| SnapError::Parse("missing \"body\" block".to_string()))?;
    let found = body_checksum(&body.to_pretty());
    if found != parsed.checksum {
        return Err(SnapError::ChecksumMismatch {
            found,
            expect: parsed.checksum,
        });
    }
    let scenario = doc.get("scenario").cloned().unwrap_or(Json::Null);
    Ok((parsed, scenario))
}

/// Rebuilds a paused simulation from snapshot text.
///
/// `cfg` and `workload` must describe the run the snapshot came from —
/// `expect_identity` (the canonical identity of that scenario/config) is
/// checked against the header and mismatches are refused, so a snapshot
/// can never silently continue a different experiment. The workload is
/// *not* re-built or re-run; it only shapes the probe rig (its serve
/// SLO table), while tasks, cursors, and pending events all come from
/// the snapshot.
///
/// The one sanctioned divergence is the fault plan: a `cfg` whose plan
/// differs from the snapshot's branches a what-if future at the pause
/// point (see the module docs). Policy *parameters* may likewise be
/// overridden for branching; the policy *kind* must match or
/// [`SnapError::State`] is returned by the policy's own restore.
pub fn restore(
    cfg: &SimConfig,
    workload: &dyn Workload,
    text: &str,
    expect_identity: &str,
) -> Result<PausedSim, SnapError> {
    let (header, _) = read_header(text)?;
    if header.identity != expect_identity {
        return Err(SnapError::IdentityMismatch {
            found: header.identity,
            expect: expect_identity.to_string(),
        });
    }
    let doc = json::parse(text).map_err(SnapError::Parse)?;
    let body = doc
        .get("body")
        .ok_or_else(|| SnapError::Parse("missing \"body\" block".to_string()))?;
    let slos = workload.serve_specs().iter().map(|s| s.slo_ns).collect();
    let (mut engine, rig) = build_engine(cfg, slos, Vec::new());
    engine
        .restore(body, &behavior_registry())
        .map_err(SnapError::State)?;
    Ok(PausedSim { engine, rig })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_once, PolicyKind};
    use nest_topology::presets;
    use nest_workloads::configure::Configure;

    fn cfg() -> SimConfig {
        SimConfig::new(presets::xeon_5218()).policy(PolicyKind::Nest)
    }

    const IDENTITY: &str = "test-scenario";

    fn snap_at(pause: Time) -> String {
        match run_until(&cfg(), &Configure::named("gdb"), pause) {
            Progress::Paused(p) => p.snapshot(IDENTITY, Json::Null).unwrap(),
            Progress::Done(_) => panic!("run finished before the pause point"),
        }
    }

    #[test]
    fn pause_snapshot_restore_continue_matches_straight_run() {
        let direct = run_once(&cfg(), &Configure::named("gdb"));
        let text = snap_at(Time::from_millis(40));
        let resumed = restore(&cfg(), &Configure::named("gdb"), &text, IDENTITY)
            .unwrap()
            .resume();
        assert_eq!(direct.time_s, resumed.time_s);
        assert_eq!(direct.energy_j, resumed.energy_j);
        assert_eq!(direct.summarize(), resumed.summarize());
    }

    #[test]
    fn snapshot_round_trips_on_a_synthetic_multi_ccx_machine() {
        // The domain-sharded state (per-CCX kernel stats, CCX-keyed turbo
        // windows, domain-local nest membership) must survive
        // pause/restore on a machine whose tree is NOT degenerate.
        use nest_sched::{NestDomain, NestParams};
        use nest_topology::NumaKind;
        let cfg = SimConfig::new(presets::synth(2, 4, 4, 1, NumaKind::Ring)).policy(
            PolicyKind::NestWith(NestParams {
                domain: NestDomain::Ccx,
                ..NestParams::default()
            }),
        );
        let direct = run_once(&cfg, &Configure::named("gdb"));
        let text = match run_until(&cfg, &Configure::named("gdb"), Time::from_millis(40)) {
            Progress::Paused(p) => p.snapshot(IDENTITY, Json::Null).unwrap(),
            Progress::Done(_) => panic!("run finished before the pause point"),
        };
        let restored = restore(&cfg, &Configure::named("gdb"), &text, IDENTITY).unwrap();
        let again = restored.snapshot(IDENTITY, Json::Null).unwrap();
        assert_eq!(text, again, "snapshot→restore→snapshot drifted");
        let resumed = restore(&cfg, &Configure::named("gdb"), &text, IDENTITY)
            .unwrap()
            .resume();
        assert_eq!(direct.time_s, resumed.time_s);
        assert_eq!(direct.energy_j, resumed.energy_j);
        assert_eq!(direct.summarize(), resumed.summarize());
    }

    #[test]
    fn run_until_past_the_end_completes() {
        let direct = run_once(&cfg(), &Configure::named("gdb"));
        match run_until(&cfg(), &Configure::named("gdb"), Time::from_secs(500)) {
            Progress::Done(r) => assert_eq!(r.time_s, direct.time_s),
            Progress::Paused(_) => panic!("pause point lies beyond the run"),
        }
    }

    #[test]
    fn snapshot_round_trips_to_identical_bytes() {
        let text = snap_at(Time::from_millis(40));
        let again = restore(&cfg(), &Configure::named("gdb"), &text, IDENTITY)
            .unwrap()
            .snapshot(IDENTITY, Json::Null)
            .unwrap();
        assert_eq!(text, again, "snapshot→restore→snapshot drifted");
    }

    #[test]
    fn header_records_the_pause() {
        let text = snap_at(Time::from_millis(40));
        let (h, scenario) = read_header(&text).unwrap();
        assert_eq!(h.schema, SNAPSHOT_SCHEMA);
        assert_eq!(h.identity, IDENTITY);
        assert_eq!(h.at_ns, 40_000_000);
        assert!(h.events > 0);
        assert!(scenario.is_null());
    }

    #[test]
    fn wrong_identity_is_refused() {
        let text = snap_at(Time::from_millis(40));
        let err = restore(&cfg(), &Configure::named("gdb"), &text, "other-scenario")
            .err()
            .unwrap();
        assert!(matches!(err, SnapError::IdentityMismatch { .. }), "{err}");
    }

    #[test]
    fn corrupted_body_is_refused() {
        let original = snap_at(Time::from_millis(40));
        let text = original.replace("\"kernel\"", "\"kernell\"");
        assert_ne!(original, text, "corruption must actually hit");
        let err = restore(&cfg(), &Configure::named("gdb"), &text, IDENTITY)
            .err()
            .unwrap();
        assert!(matches!(err, SnapError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn wrong_schema_is_refused() {
        let text = snap_at(Time::from_millis(40)).replace("\"schema\": 3", "\"schema\": 999");
        let err = read_header(&text).err().unwrap();
        assert!(matches!(
            err,
            SnapError::SchemaMismatch {
                found: 999,
                expect: SNAPSHOT_SCHEMA
            }
        ));
    }

    #[test]
    fn older_schema_snapshots_are_refused_with_a_clear_error() {
        // Snapshots from builds with older container schemas (v1 wrote a
        // flat body, v2 predates domain sharding) must be refused at the
        // header — a typed SchemaMismatch, never a parse panic from
        // decoding a body this build no longer understands. The message
        // is pinned because `nest-sim replay` and the warm-start path
        // both surface it verbatim.
        for old in [1u64, 2] {
            let text = snap_at(Time::from_millis(40))
                .replace("\"schema\": 3", &format!("\"schema\": {old}"));
            let err = restore(&cfg(), &Configure::named("gdb"), &text, IDENTITY)
                .err()
                .unwrap();
            assert!(
                matches!(
                    err,
                    SnapError::SchemaMismatch {
                        found,
                        expect: SNAPSHOT_SCHEMA
                    } if found == old
                ),
                "{err}"
            );
            assert_eq!(
                err.to_string(),
                format!(
                    "snapshot schema v{old} is not readable by this build (expects v{SNAPSHOT_SCHEMA})"
                )
            );
        }
    }

    #[test]
    fn garbage_is_a_parse_error() {
        assert!(matches!(
            read_header("not json").err().unwrap(),
            SnapError::Parse(_)
        ));
        assert!(matches!(
            read_header("{\"x\": 1}").err().unwrap(),
            SnapError::Parse(_)
        ));
    }

    #[test]
    fn trace_runs_refuse_to_snapshot() {
        let traced = cfg().with_trace();
        match run_until(&traced, &Configure::named("gdb"), Time::from_millis(40)) {
            Progress::Paused(p) => {
                let err = p.snapshot(IDENTITY, Json::Null).err().unwrap();
                assert!(matches!(err, SnapError::State(_)), "{err}");
            }
            Progress::Done(_) => panic!("run finished before the pause point"),
        }
    }
}
