//! Multi-run scheduler comparisons following §5.1's protocol.
//!
//! A comparison runs each scheduler configuration `runs` times, averages,
//! and reports speedups relative to the first configuration (the
//! CFS-schedutil baseline in the paper's figures) with the standard
//! deviation of the improvement — exactly how the paper's bar graphs are
//! constructed.
//!
//! The *aggregation* ([`Comparison::from_summaries`]) is a pure function
//! over plain-data [`RunSummary`]s, so it produces identical output
//! whether the runs were executed serially here ([`compare_schedulers`])
//! or fanned out across worker threads and the result cache by
//! `nest-harness`, which is the path every figure binary uses.

use nest_freq::Governor;
use nest_metrics::stats::{improvement_stats, savings_pct, speedup_pct, Stats};
use nest_metrics::RunSummary;
use nest_workloads::Workload;

use crate::sim::{run_many, PolicyKind, SimConfig};

/// One scheduler configuration in a comparison.
#[derive(Clone, Debug)]
pub struct SchedulerSetup {
    /// Policy to run.
    pub policy: PolicyKind,
    /// Governor to run it under.
    pub governor: Governor,
}

impl SchedulerSetup {
    /// Convenience constructor.
    pub fn new(policy: PolicyKind, governor: Governor) -> SchedulerSetup {
        SchedulerSetup { policy, governor }
    }

    /// The paper's four standard configurations plus the CFS-schedutil
    /// baseline first: `CFS sched, CFS perf, Nest sched, Nest perf`.
    pub fn paper_set() -> Vec<SchedulerSetup> {
        vec![
            SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil),
            SchedulerSetup::new(PolicyKind::Cfs, Governor::Performance),
            SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil),
            SchedulerSetup::new(PolicyKind::Nest, Governor::Performance),
        ]
    }

    /// The configure-figure set, which adds Smove-schedutil (Figure 5).
    pub fn configure_set() -> Vec<SchedulerSetup> {
        let mut v = SchedulerSetup::paper_set();
        v.push(SchedulerSetup::new(PolicyKind::Smove, Governor::Schedutil));
        v
    }

    /// Figure label like `"Nest sched"`.
    pub fn label(&self) -> String {
        format!("{} {}", self.policy.label(), self.governor.short_name())
    }

    /// A canonical identity string covering *every* parameter of the
    /// setup (ablation variants with different `NestParams` must not
    /// collide). Feeds seed derivation and the harness cache key.
    pub fn identity(&self) -> String {
        format!("{:?}|{:?}", self.policy, self.governor)
    }
}

/// Results of one scheduler within a comparison.
#[derive(Clone, Debug)]
pub struct SchedulerOutcome {
    /// The configuration label (`"Nest sched"` …).
    pub label: String,
    /// Running-time statistics over the measured runs (seconds).
    pub time: Stats,
    /// Energy statistics (joules).
    pub energy: Stats,
    /// Mean underload per second.
    pub underload_per_s: f64,
    /// Speedup vs the baseline mean, % (`None` for the baseline row).
    pub speedup_pct: Option<Stats>,
    /// Energy savings vs the baseline mean, %.
    pub energy_savings_pct: Option<f64>,
    /// Mean fraction of busy time in the top two frequency buckets.
    pub top_freq_fraction: f64,
    /// The raw per-run summaries (for figure-specific post-processing).
    pub runs: Vec<RunSummary>,
}

/// A full comparison on one machine and workload.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// Row per scheduler, baseline (index 0) first.
    pub rows: Vec<SchedulerOutcome>,
}

impl Comparison {
    /// Returns the row with the given label.
    pub fn row(&self, label: &str) -> Option<&SchedulerOutcome> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Aggregates per-run summaries into a comparison, one inner vector
    /// per scheduler setup (baseline first), following §5.1: average over
    /// runs, report the standard deviation, normalize speedups against
    /// the baseline *mean*.
    ///
    /// # Panics
    ///
    /// Panics if `summaries` is empty, its length differs from
    /// `schedulers`, or any setup has zero runs.
    pub fn from_summaries(
        workload: &str,
        machine: &str,
        schedulers: &[SchedulerSetup],
        summaries: Vec<Vec<RunSummary>>,
    ) -> Comparison {
        assert!(!schedulers.is_empty(), "need at least a baseline");
        assert_eq!(
            schedulers.len(),
            summaries.len(),
            "one run set per scheduler"
        );
        let mut rows = Vec::new();
        let mut baseline_time_mean = None;
        let mut baseline_energy_mean = None;
        for (s, results) in schedulers.iter().zip(summaries) {
            assert!(!results.is_empty(), "{}: no runs", s.label());
            let times: Vec<f64> = results.iter().map(|r| r.time_s).collect();
            let energies: Vec<f64> = results.iter().map(|r| r.energy_j).collect();
            let time = Stats::from_samples(&times);
            let energy = Stats::from_samples(&energies);
            let underload_per_s =
                results.iter().map(|r| r.underload_per_s).sum::<f64>() / results.len() as f64;
            let top_freq_fraction =
                results.iter().map(|r| r.top_fraction(2)).sum::<f64>() / results.len() as f64;
            let (speedup, savings) = match (baseline_time_mean, baseline_energy_mean) {
                (Some(bt), Some(be)) => (
                    Some(improvement_stats(bt, &times)),
                    Some(savings_pct(be, energy.mean)),
                ),
                _ => {
                    baseline_time_mean = Some(time.mean);
                    baseline_energy_mean = Some(energy.mean);
                    (None, None)
                }
            };
            rows.push(SchedulerOutcome {
                label: s.label(),
                time,
                energy,
                underload_per_s,
                speedup_pct: speedup,
                energy_savings_pct: savings,
                top_freq_fraction,
                runs: results,
            });
        }
        Comparison {
            workload: workload.to_string(),
            machine: machine.to_string(),
            rows,
        }
    }
}

/// Runs `schedulers[0]` as the baseline and every other configuration
/// against it on `machine`/`workload`, serially in this thread.
///
/// Figure binaries use `nest-harness` instead, which executes the same
/// cells in parallel with result caching; this entry point remains for
/// unit tests, examples, and one-off API use.
pub fn compare_schedulers(
    machine: &nest_topology::MachineSpec,
    workload: &dyn Workload,
    schedulers: &[SchedulerSetup],
    runs: usize,
    seed: u64,
) -> Comparison {
    assert!(!schedulers.is_empty(), "need at least a baseline");
    assert!(runs > 0, "need at least one run");
    let summaries: Vec<Vec<RunSummary>> = schedulers
        .iter()
        .map(|s| {
            let cfg = SimConfig::new(machine.clone())
                .policy(s.policy.clone())
                .governor(s.governor)
                .seed(seed);
            run_many(&cfg, workload, runs)
                .iter()
                .map(|r| r.summarize())
                .collect()
        })
        .collect();
    Comparison::from_summaries(&workload.name(), &machine.name, schedulers, summaries)
}

/// Formats a comparison as an aligned text table (the harness output).
pub fn format_table(c: &Comparison) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {} on {}\n", c.workload, c.machine));
    out.push_str(&format!(
        "{:<12} {:>10} {:>7} {:>10} {:>8} {:>9} {:>8}\n",
        "scheduler", "time(s)", "±%", "energy(J)", "u/s", "speedup%", "top-f%"
    ));
    for r in &c.rows {
        out.push_str(&format!(
            "{:<12} {:>10.3} {:>7.1} {:>10.1} {:>8.2} {:>9} {:>8.1}\n",
            r.label,
            r.time.mean,
            r.time.std_pct(),
            r.energy.mean,
            r.underload_per_s,
            r.speedup_pct
                .as_ref()
                .map_or("base".to_string(), |s| format!("{:+.1}", s.mean)),
            100.0 * r.top_freq_fraction,
        ));
    }
    out
}

/// Sanity check used across harness binaries: the comparison must contain
/// a baseline and every row must have positive time.
pub fn validate(c: &Comparison) {
    assert!(!c.rows.is_empty());
    assert!(
        c.rows[0].speedup_pct.is_none(),
        "row 0 must be the baseline"
    );
    for r in &c.rows {
        assert!(r.time.mean > 0.0, "{}: nonpositive time", r.label);
    }
    let _ = speedup_pct(1.0, 1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;
    use nest_workloads::configure::Configure;

    #[test]
    fn comparison_computes_speedups_vs_baseline() {
        let machine = presets::xeon_5218();
        let schedulers = vec![
            SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil),
            SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil),
        ];
        let c = compare_schedulers(&machine, &Configure::named("gdb"), &schedulers, 2, 11);
        assert_eq!(c.rows.len(), 2);
        assert!(c.rows[0].speedup_pct.is_none());
        assert!(c.rows[1].speedup_pct.is_some());
        assert!(c.row("Nest sched").is_some());
        validate(&c);
        let table = format_table(&c);
        assert!(table.contains("Nest sched"));
        assert!(table.contains("base"));
    }

    #[test]
    fn paper_set_has_four_configs_plus_smove_for_configure() {
        assert_eq!(SchedulerSetup::paper_set().len(), 4);
        let cs = SchedulerSetup::configure_set();
        assert_eq!(cs.len(), 5);
        assert_eq!(cs[4].label(), "Smove sched");
    }

    #[test]
    fn identity_distinguishes_parameter_variants() {
        use nest_sched::NestParams;
        let a = SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil);
        let b = SchedulerSetup::new(
            PolicyKind::NestWith(NestParams {
                r_max: 10,
                ..NestParams::default()
            }),
            Governor::Schedutil,
        );
        // Same figure label, different identity.
        assert_eq!(a.label(), b.label());
        assert_ne!(a.identity(), b.identity());
    }

    #[test]
    fn from_summaries_matches_serial_compare() {
        use crate::sim::run_seed;
        let machine = presets::xeon_5218();
        let w = Configure::named("gdb");
        let schedulers = vec![
            SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil),
            SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil),
        ];
        let serial = compare_schedulers(&machine, &w, &schedulers, 2, 9);
        let summaries: Vec<Vec<RunSummary>> = schedulers
            .iter()
            .map(|s| {
                (0..2)
                    .map(|i| {
                        let cfg = SimConfig::new(machine.clone())
                            .policy(s.policy.clone())
                            .governor(s.governor)
                            .seed(run_seed(9, i));
                        crate::sim::run_once(&cfg, &w).summarize()
                    })
                    .collect()
            })
            .collect();
        let rebuilt = Comparison::from_summaries("gdb", &machine.name, &schedulers, summaries);
        assert_eq!(serial.rows.len(), rebuilt.rows.len());
        for (a, b) in serial.rows.iter().zip(&rebuilt.rows) {
            assert_eq!(a.time.mean, b.time.mean);
            assert_eq!(a.energy.mean, b.energy.mean);
            assert_eq!(a.runs, b.runs);
        }
    }
}
