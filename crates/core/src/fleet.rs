//! Multi-host fleet co-simulation.
//!
//! `run_fleet` (crate-internal, reached through the normal run entry
//! points) runs N independent host simulations — each a full
//! [`crate::sim::SimConfig`] engine cell with its own machine, policy,
//! governor, and derived seed — behind a discrete-event load balancer
//! that routes the workload's serve streams. The client side implements
//! the robustness stack of the `fleet:` scenario grammar: per-request
//! timeouts, bounded retries with capped-exponential deterministic
//! backoff that re-route to a different host, optional hedged requests
//! (duplicate after a p95-estimate delay, first answer wins), SLO-aware
//! brownout shedding, and host crash/restart with cold nests.
//!
//! # Time model
//!
//! The balancer owns a fleet-wide clock in nanoseconds. Each host engine
//! keeps its own local clock starting at zero per *epoch* (boot or
//! restart); `fleet_ns = epoch_ns + local_ns`. This is a conservative
//! co-simulation: before the balancer processes an event at `t`, every
//! alive host is advanced to its local image of `t` and its request
//! completions are harvested and applied in `(fleet_ns, host)` order.
//! Cross-host interactions only happen through balancer events, which are
//! totally ordered by `(time, sequence)`, so the whole fleet is
//! byte-deterministic at any worker count.
//!
//! # What the merged [`RunResult`] means
//!
//! Scalar and mergeable metrics (energy, placements, wakeup latencies,
//! frequency residency, decision/invariant/serve/phase tallies, task
//! counts) are summed or merged across every host epoch. Machine-lens
//! blocks that are inherently per-host — underload intervals, the
//! time-series, the optional execution trace — report **host 0's first
//! epoch** only. The fleet-wide client view lives in
//! [`RunResult::fleet`].

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

use nest_engine::Engine;
use nest_faults::ThrottleFault;
use nest_fleet::{choose_host, BackoffSampler, FleetSpec, HedgeMode, HostView};
use nest_metrics::{FleetMetrics, FleetRunStats, FleetWindow, TailHistogram};
use nest_serve::{ServeSpec, REQUEST_LABEL_PREFIX};
use nest_simcore::rng::mix64;
use nest_simcore::{Probe, SimRng, TaskId, TaskSpec, Time, TraceEvent};
use nest_workloads::Workload;

use crate::sim::{build_engine, collect_result, ProbeRig, RunResult, SimConfig};

/// Salt separating per-host seed streams from every other consumer of the
/// cell seed.
const FLEET_HOST_SALT: u64 = 0xF1EE_7405_7EED_0001;

/// Goodput-timeline bucket width.
const TIMELINE_WINDOW_NS: u64 = 50_000_000;

/// Sliding window of recent attempt latencies per host, feeding the
/// brownout estimator.
const BROWNOUT_RING: usize = 64;

/// Minimum ring samples before the brownout estimator speaks.
const BROWNOUT_MIN_SAMPLES: usize = 16;

/// Completed-request samples required before the hedge delay trusts the
/// p95 estimate instead of the timeout/2 prior.
const HEDGE_MIN_SAMPLES: u64 = 20;

// ---- host-side observation -------------------------------------------

/// What the balancer taps out of one host engine: request completions
/// (label + local time) and the current primary-nest size (the warmth
/// signal the `lb=warmth` policy and time-to-warm metric read).
#[derive(Default)]
struct TapState {
    live_reqs: HashMap<TaskId, String>,
    completions: Vec<(u64, String)>,
    nest_primary: u32,
}

struct FleetTap {
    state: Rc<RefCell<TapState>>,
}

impl Probe for FleetTap {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        let mut s = self.state.borrow_mut();
        match event {
            TraceEvent::TaskCreated { task, label, .. }
                if label.starts_with(REQUEST_LABEL_PREFIX) =>
            {
                s.live_reqs.insert(*task, label.clone());
            }
            TraceEvent::TaskExited { task } => {
                if let Some(label) = s.live_reqs.remove(task) {
                    s.completions.push((now.as_nanos(), label));
                }
            }
            TraceEvent::NestExpand { primary, .. }
            | TraceEvent::NestShrink { primary, .. }
            | TraceEvent::NestCompaction { primary, .. } => s.nest_primary = *primary,
            _ => {}
        }
    }
}

// ---- balancer state ---------------------------------------------------

struct Host {
    engine: Option<Engine>,
    rig: Option<ProbeRig>,
    tap: Rc<RefCell<TapState>>,
    epoch_ns: u64,
    epoch: u64,
    alive: bool,
    outstanding: u32,
    ring: VecDeque<u64>,
    brownout: bool,
    pre_crash_nest: u32,
    restart_ns: Option<u64>,
    harvested: usize,
}

struct Attempt {
    host: usize,
    sent_ns: u64,
    hedge: bool,
    /// The client gave up on this attempt (timeout).
    resolved: bool,
    /// The server finished the work (possibly after the client gave up).
    completed: bool,
}

struct ReqState {
    label: String,
    plan: usize,
    idx: usize,
    arrival_ns: u64,
    attempts: Vec<Attempt>,
    retries_used: u32,
    hedged: bool,
    done: bool,
    failed: bool,
    shed: bool,
}

impl ReqState {
    fn settled(&self) -> bool {
        self.done || self.failed || self.shed
    }
}

enum EvKind {
    Arrival(usize),
    Timeout { req: usize, attempt: usize },
    Retry(usize),
    Hedge(usize),
    Crash,
    Restart,
}

struct Driver<'a> {
    cfg: &'a SimConfig,
    workload: &'a dyn Workload,
    spec: &'a FleetSpec,
    serve_specs: Vec<ServeSpec>,
    slo_ns: u64,
    hosts: Vec<Host>,
    reqs: Vec<ReqState>,
    req_by_label: HashMap<String, usize>,
    /// Materialized request tasks, consumed on first dispatch; retries
    /// and hedges re-materialize from the pure arrival plan.
    pending_tasks: Vec<Vec<Option<TaskSpec>>>,
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    events: Vec<EvKind>,
    rr_cursor: usize,
    backoff: BackoffSampler,
    metrics: FleetMetrics,
    timeline: Vec<FleetWindow>,
    /// `(host, epoch, epoch_ns, result)` for every host epoch, in
    /// collection order; sorted by `(host, epoch)` before merging.
    results: Vec<(usize, u64, u64, RunResult)>,
    last_event_ns: u64,
}

impl<'a> Driver<'a> {
    fn push_event(&mut self, t_ns: u64, kind: EvKind) {
        let seq = self.events.len() as u64;
        self.events.push(kind);
        self.heap.push(Reverse((t_ns, seq)));
    }

    fn host_seed(&self, h: usize, epoch: u64) -> u64 {
        mix64(mix64(self.cfg.seed ^ FLEET_HOST_SALT, h as u64), epoch)
    }

    /// Boots host `h` for `epoch` with local clock zero at fleet time
    /// `epoch_ns`. `extra_probes` only ever arrive for host 0's first
    /// epoch (caller probes observe one cell, like single-host runs).
    fn boot_host(&self, h: usize, epoch: u64, extra_probes: Vec<Box<dyn Probe>>) -> Host {
        let mut hcfg = self.cfg.clone().seed(self.host_seed(h, epoch));
        // Degraded modes ride the existing throttle-fault machinery: a
        // `degrade=hK:F@T[:D]` clause throttles every socket of host K at
        // host-local time T (re-applied per epoch after a restart).
        for d in self.spec.degrade.iter().filter(|d| d.host as usize == h) {
            for socket in 0..hcfg.machine.sockets {
                hcfg.faults.throttle.push(ThrottleFault {
                    socket,
                    factor: d.factor,
                    at_ns: d.at_ns,
                    dur_ns: d.dur_ns,
                });
            }
        }
        let slos = self.serve_specs.iter().map(|s| s.slo_ns).collect();
        let tap = Rc::new(RefCell::new(TapState::default()));
        let mut probes: Vec<Box<dyn Probe>> = vec![Box::new(FleetTap { state: tap.clone() })];
        probes.extend(extra_probes);
        let (mut engine, rig) = build_engine(&hcfg, slos, probes);
        engine.set_keepalive(true);
        let mut wl_rng = SimRng::new(hcfg.seed ^ 0xD00D_F00D);
        for task in self.workload.build(&mut engine, &mut wl_rng) {
            engine.spawn(task);
        }
        Host {
            engine: Some(engine),
            rig: Some(rig),
            tap,
            epoch_ns: 0,
            epoch,
            alive: true,
            outstanding: 0,
            ring: VecDeque::new(),
            brownout: false,
            pre_crash_nest: 0,
            restart_ns: None,
            harvested: 0,
        }
    }

    fn host_views(&self) -> Vec<HostView> {
        self.hosts
            .iter()
            .map(|h| HostView {
                alive: h.alive,
                outstanding: h.outstanding,
                nest_primary: h.tap.borrow().nest_primary,
                brownout: h.brownout,
            })
            .collect()
    }

    fn bump_timeline(&mut self, t_ns: u64, ok: bool) {
        let w = (t_ns / TIMELINE_WINDOW_NS) as usize;
        if self.timeline.len() <= w {
            self.timeline.resize(w + 1, FleetWindow::default());
        }
        if ok {
            self.timeline[w].ok += 1;
        } else {
            self.timeline[w].arrived += 1;
        }
    }

    /// Advances every alive host to fleet time `t_ns`, then applies all
    /// harvested request completions in `(fleet_ns, host)` order and
    /// polls warm-recovery progress.
    fn advance_to(&mut self, t_ns: u64) {
        for h in 0..self.hosts.len() {
            if !self.hosts[h].alive {
                continue;
            }
            let local = t_ns.saturating_sub(self.hosts[h].epoch_ns);
            let done = {
                let engine = self.hosts[h]
                    .engine
                    .as_mut()
                    .expect("alive host has engine");
                engine.run_to(Time::from_nanos(local))
            };
            if let Some(outcome) = done {
                // Horizon or watchdog ended this host early; it stops
                // taking traffic but its metrics survive.
                let host = &mut self.hosts[h];
                host.alive = false;
                host.engine = None;
                host.outstanding = 0;
                let rig = host.rig.take().expect("rig present until collected");
                let r = collect_result(&outcome, rig);
                self.results
                    .push((h, self.hosts[h].epoch, self.hosts[h].epoch_ns, r));
            }
        }
        self.apply_completions();
        self.poll_warmth(t_ns);
    }

    fn apply_completions(&mut self) {
        let mut batch: Vec<(u64, usize, String)> = Vec::new();
        for (h, host) in self.hosts.iter_mut().enumerate() {
            let tap = host.tap.borrow();
            for (local_ns, label) in &tap.completions[host.harvested..] {
                batch.push((host.epoch_ns + local_ns, h, label.clone()));
            }
            host.harvested = tap.completions.len();
        }
        batch.sort();
        for (fleet_ns, h, label) in batch {
            self.complete(fleet_ns, h, &label);
        }
    }

    fn complete(&mut self, fleet_ns: u64, h: usize, label: &str) {
        let req_idx = *self
            .req_by_label
            .get(label)
            .expect("completion for unknown request");
        self.hosts[h].outstanding = self.hosts[h].outstanding.saturating_sub(1);
        let (attempt_lat, was_live, was_hedge, client_lat) = {
            let req = &mut self.reqs[req_idx];
            let a = req
                .attempts
                .iter_mut()
                .find(|a| a.host == h && !a.completed)
                .expect("completion without a matching attempt");
            a.completed = true;
            let lat = fleet_ns.saturating_sub(a.sent_ns);
            let live = !a.resolved && !req.done && !req.failed && !req.shed;
            (lat, live, a.hedge, fleet_ns.saturating_sub(req.arrival_ns))
        };
        // Server-side health signal: every completion feeds the host's
        // brownout ring and per-host histogram, wasted or not.
        let host = &mut self.hosts[h];
        if host.ring.len() == BROWNOUT_RING {
            host.ring.pop_front();
        }
        host.ring.push_back(attempt_lat);
        host.brownout = ring_p99(&host.ring).is_some_and(|p99| p99 > self.slo_ns);
        self.metrics.host_hist[h].record(attempt_lat);
        if was_live {
            self.reqs[req_idx].done = true;
            self.metrics.completed += 1;
            self.metrics.hist.record(client_lat);
            self.bump_timeline(fleet_ns, true);
            if was_hedge {
                self.metrics.hedge_wins += 1;
            }
        } else {
            self.metrics.late_completions += 1;
        }
    }

    fn poll_warmth(&mut self, t_ns: u64) {
        for host in &mut self.hosts {
            if let Some(restart_ns) = host.restart_ns {
                if host.alive
                    && host.pre_crash_nest > 0
                    && host.tap.borrow().nest_primary >= host.pre_crash_nest
                {
                    self.metrics.warm_recoveries += 1;
                    self.metrics.time_to_warm_ns_total += t_ns.saturating_sub(restart_ns);
                    host.restart_ns = None;
                }
            }
        }
    }

    /// Re-creates the request's task. The first dispatch consumes the
    /// up-front materialization; retries and hedges replay the pure
    /// per-plan arrival function (request behaviours depend on the RNG
    /// state after requests `0..i`, so a single request can only be
    /// rebuilt by replaying its plan).
    fn request_task(&mut self, plan: usize, idx: usize) -> TaskSpec {
        if let Some(t) = self.pending_tasks[plan][idx].take() {
            return t;
        }
        nest_serve::materialize(&self.serve_specs[plan], plan, self.cfg.seed)
            .into_iter()
            .nth(idx)
            .expect("request index within plan")
            .1
    }

    /// Dispatches one attempt of `req_idx` at fleet time `t_ns`,
    /// preferring hosts outside `exclude`. Returns the chosen host.
    fn dispatch(
        &mut self,
        req_idx: usize,
        t_ns: u64,
        exclude: &[usize],
        hedge: bool,
    ) -> Option<usize> {
        let views = self.host_views();
        let mut eligible: Vec<usize> = (0..views.len())
            .filter(|&i| views[i].alive && !exclude.contains(&i))
            .collect();
        if eligible.is_empty() {
            eligible = (0..views.len()).filter(|&i| views[i].alive).collect();
        }
        let h = choose_host(self.spec.lb, &views, &eligible, &mut self.rr_cursor)?;
        let (plan, idx) = (self.reqs[req_idx].plan, self.reqs[req_idx].idx);
        let task = self.request_task(plan, idx);
        {
            let host = &mut self.hosts[h];
            let local = t_ns.saturating_sub(host.epoch_ns);
            host.engine
                .as_mut()
                .expect("alive host has engine")
                .inject_live(Time::from_nanos(local), task);
            host.outstanding += 1;
        }
        let attempt = self.reqs[req_idx].attempts.len();
        self.reqs[req_idx].attempts.push(Attempt {
            host: h,
            sent_ns: t_ns,
            hedge,
            resolved: false,
            completed: false,
        });
        self.push_event(
            t_ns + self.spec.timeout_ns,
            EvKind::Timeout {
                req: req_idx,
                attempt,
            },
        );
        Some(h)
    }

    /// The hedge trigger delay at fleet time of dispatch: the p95 of the
    /// completed-latency histogram once it has enough mass, else half the
    /// timeout as a prior; or a fixed duration.
    fn hedge_delay(&self) -> Option<u64> {
        match self.spec.hedge {
            HedgeMode::Off => None,
            HedgeMode::After(d) => Some(d),
            HedgeMode::P95 => {
                if self.metrics.hist.len() >= HEDGE_MIN_SAMPLES {
                    Some(
                        self.metrics
                            .hist
                            .quantile(0.95)
                            .unwrap_or(self.spec.timeout_ns / 2),
                    )
                } else {
                    Some(self.spec.timeout_ns / 2)
                }
            }
        }
    }

    fn on_arrival(&mut self, req_idx: usize, t_ns: u64) {
        self.metrics.offered += 1;
        self.bump_timeline(t_ns, false);
        let views = self.host_views();
        let any_alive = views.iter().any(|v| v.alive);
        if !any_alive {
            self.reqs[req_idx].failed = true;
            self.metrics.failed += 1;
            return;
        }
        if self.spec.shed && views.iter().filter(|v| v.alive).all(|v| v.brownout) {
            self.reqs[req_idx].shed = true;
            self.metrics.shed += 1;
            return;
        }
        self.dispatch(req_idx, t_ns, &[], false);
        if let Some(delay) = self.hedge_delay() {
            self.push_event(t_ns + delay, EvKind::Hedge(req_idx));
        }
    }

    fn on_timeout(&mut self, req_idx: usize, attempt: usize, t_ns: u64) {
        {
            let req = &mut self.reqs[req_idx];
            if req.settled() || req.attempts[attempt].completed || req.attempts[attempt].resolved {
                return;
            }
            req.attempts[attempt].resolved = true;
        }
        self.metrics.timeouts += 1;
        let req = &self.reqs[req_idx];
        // Another attempt is still live (hedge pair): let it race on.
        if req.attempts.iter().any(|a| !a.resolved && !a.completed) {
            return;
        }
        if req.retries_used < self.spec.retry {
            let retries_used = req.retries_used + 1;
            let delay = self.backoff.delay_ns(&req.label, retries_used);
            self.reqs[req_idx].retries_used = retries_used;
            self.push_event(t_ns + delay, EvKind::Retry(req_idx));
        } else {
            self.reqs[req_idx].failed = true;
            self.metrics.failed += 1;
        }
    }

    fn on_retry(&mut self, req_idx: usize, t_ns: u64) {
        if self.reqs[req_idx].settled() {
            return;
        }
        let tried: Vec<usize> = self.reqs[req_idx].attempts.iter().map(|a| a.host).collect();
        match self.dispatch(req_idx, t_ns, &tried, false) {
            Some(_) => self.metrics.retries += 1,
            None => {
                self.reqs[req_idx].failed = true;
                self.metrics.failed += 1;
            }
        }
    }

    fn on_hedge(&mut self, req_idx: usize, t_ns: u64) {
        {
            let req = &self.reqs[req_idx];
            if req.settled()
                || req.hedged
                || req.attempts.len() != 1
                || req.attempts[0].resolved
                || req.attempts[0].completed
            {
                return;
            }
        }
        let first_host = self.reqs[req_idx].attempts[0].host;
        if self.dispatch(req_idx, t_ns, &[first_host], true).is_some() {
            self.reqs[req_idx].hedged = true;
            self.metrics.hedges += 1;
        }
    }

    fn on_crash(&mut self, t_ns: u64) {
        let down = self
            .spec
            .down
            .as_ref()
            .expect("crash event implies hostdown");
        // The first `count` hosts crash: index tie-breaking makes the
        // low-indexed hosts the busiest (and warmest), so this is the
        // worst-case failover rather than the loss of an idle spare.
        let count = (down.count as usize).min(self.hosts.len());
        for h in 0..count {
            if !self.hosts[h].alive {
                continue;
            }
            self.metrics.crashes += 1;
            let host = &mut self.hosts[h];
            self.metrics.in_flight_lost += host.outstanding as u64;
            host.pre_crash_nest = host.tap.borrow().nest_primary;
            host.alive = false;
            host.outstanding = 0;
            host.ring.clear();
            host.brownout = false;
            let mut engine = host.engine.take().expect("alive host has engine");
            let rig = host.rig.take().expect("rig present until collected");
            // In-flight attempts are simply lost: their client timeouts
            // fire later and drive retries to the survivors.
            let outcome = engine.abandon();
            let r = collect_result(&outcome, rig);
            let (epoch, epoch_ns) = (self.hosts[h].epoch, self.hosts[h].epoch_ns);
            self.results.push((h, epoch, epoch_ns, r));
        }
        let _ = t_ns;
    }

    fn on_restart(&mut self, t_ns: u64) {
        let down = self
            .spec
            .down
            .as_ref()
            .expect("restart event implies hostdown");
        let count = (down.count as usize).min(self.hosts.len());
        for h in 0..count {
            if self.hosts[h].alive {
                continue;
            }
            let epoch = self.hosts[h].epoch + 1;
            let pre_crash_nest = self.hosts[h].pre_crash_nest;
            let mut fresh = self.boot_host(h, epoch, Vec::new());
            fresh.epoch_ns = t_ns;
            fresh.pre_crash_nest = pre_crash_nest;
            fresh.restart_ns = Some(t_ns);
            self.hosts[h] = fresh;
            self.metrics.restarts += 1;
        }
    }

    /// Winds down every surviving host (background work runs to its
    /// natural end), harvests the stragglers, and merges everything into
    /// one [`RunResult`].
    fn finish(mut self) -> RunResult {
        for h in 0..self.hosts.len() {
            if !self.hosts[h].alive {
                continue;
            }
            let host = &mut self.hosts[h];
            let mut engine = host.engine.take().expect("alive host has engine");
            engine.set_keepalive(false);
            let outcome = engine.resume();
            let rig = host.rig.take().expect("rig present until collected");
            let r = collect_result(&outcome, rig);
            let (epoch, epoch_ns) = (host.epoch, host.epoch_ns);
            self.results.push((h, epoch, epoch_ns, r));
        }
        self.apply_completions();

        debug_assert_eq!(
            self.metrics.completed + self.metrics.failed + self.metrics.shed,
            self.metrics.offered,
            "every offered request must settle exactly once"
        );

        self.results.sort_by_key(|(h, e, _, _)| (*h, *e));
        let fleet_end_ns = self
            .results
            .iter()
            .map(|(_, _, epoch_ns, r)| epoch_ns + (r.time_s * 1e9).round() as u64)
            .chain(std::iter::once(self.last_event_ns))
            .max()
            .unwrap_or(0);

        let mut it = self.results.into_iter();
        let (_, _, _, mut base) = it.next().expect("at least one host epoch");
        for (_, _, _, r) in it {
            base.energy_j += r.energy_j;
            for (path, n) in &r.placements.by_path {
                *base.placements.by_path.entry(*path).or_insert(0) += n;
            }
            for (mine, theirs) in base
                .placements
                .by_core
                .iter_mut()
                .zip(&r.placements.by_core)
            {
                *mine += theirs;
            }
            base.latency.samples.extend_from_slice(&r.latency.samples);
            for (mine, theirs) in base.freq.busy_ns.iter_mut().zip(&r.freq.busy_ns) {
                *mine += theirs;
            }
            base.decision.merge(&r.decision);
            base.invariants.merge(&r.invariants);
            base.serve.merge(&r.serve);
            base.phases.merge(&r.phases);
            base.total_tasks += r.total_tasks;
            base.hit_horizon |= r.hit_horizon;
            base.aborted |= r.aborted;
        }
        base.latency.samples.sort_unstable();
        base.time_s = fleet_end_ns as f64 / 1e9;
        if base.serve.runs > 0 {
            // The per-host serve probes each report their own makespan;
            // fleet rates are over the fleet clock.
            base.serve.runs = 1;
            base.serve.sim_ns = fleet_end_ns;
        }
        if base.phases.runs > 0 {
            base.phases.runs = 1;
        }

        self.metrics.runs = 1;
        self.metrics.hosts = self.spec.hosts;
        self.metrics.sim_ns = fleet_end_ns;
        base.fleet = Some(FleetRunStats {
            metrics: self.metrics,
            timeline_window_ns: TIMELINE_WINDOW_NS,
            timeline: self.timeline,
        });
        base
    }
}

/// The p99 estimate over a brownout ring: the `ceil(0.99·n)`-th smallest
/// sample, `None` below the minimum sample count.
fn ring_p99(ring: &VecDeque<u64>) -> Option<u64> {
    if ring.len() < BROWNOUT_MIN_SAMPLES {
        return None;
    }
    let mut sorted: Vec<u64> = ring.iter().copied().collect();
    sorted.sort_unstable();
    let rank = (sorted.len() as f64 * 0.99).ceil() as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

/// Runs `workload` once as a fleet of `spec.hosts` independent host
/// simulations behind the load balancer. Caller probes attach to host
/// 0's first epoch only (they observe one cell, exactly like a
/// single-host run).
pub(crate) fn run_fleet(
    cfg: &SimConfig,
    workload: &dyn Workload,
    spec: &FleetSpec,
    extra_probes: Vec<Box<dyn Probe>>,
) -> RunResult {
    spec.validate().expect("fleet spec validated at parse time");
    let serve_specs = workload.serve_specs();
    assert!(
        !serve_specs.is_empty(),
        "a fleet run needs serve streams to route"
    );
    let slo_ns = serve_specs[0].slo_ns;

    let mut driver = Driver {
        cfg,
        workload,
        spec,
        serve_specs: serve_specs.clone(),
        slo_ns,
        hosts: Vec::new(),
        reqs: Vec::new(),
        req_by_label: HashMap::new(),
        pending_tasks: Vec::new(),
        heap: BinaryHeap::new(),
        events: Vec::new(),
        rr_cursor: 0,
        backoff: BackoffSampler::new(spec.backoff_ns, spec.cap_ns, cfg.seed),
        metrics: FleetMetrics {
            host_hist: vec![TailHistogram::default(); spec.hosts as usize],
            ..FleetMetrics::default()
        },
        timeline: Vec::new(),
        results: Vec::new(),
        last_event_ns: 0,
    };

    let mut extra = Some(extra_probes);
    for h in 0..spec.hosts as usize {
        let host = driver.boot_host(h, 0, extra.take().unwrap_or_default());
        driver.hosts.push(host);
    }

    // Materialize every serve stream once, fleet-wide: arrivals are a
    // pure function of (spec, plan, seed), independent of routing.
    for (plan, sspec) in serve_specs.iter().enumerate() {
        let mut tasks = Vec::new();
        for (idx, (at_ns, task)) in nest_serve::materialize(sspec, plan, cfg.seed)
            .into_iter()
            .enumerate()
        {
            let req_idx = driver.reqs.len();
            driver.req_by_label.insert(task.label.clone(), req_idx);
            driver.reqs.push(ReqState {
                label: task.label.clone(),
                plan,
                idx,
                arrival_ns: at_ns,
                attempts: Vec::new(),
                retries_used: 0,
                hedged: false,
                done: false,
                failed: false,
                shed: false,
            });
            tasks.push(Some(task));
            driver.push_event(at_ns, EvKind::Arrival(req_idx));
        }
        driver.pending_tasks.push(tasks);
    }

    if let Some(down) = &spec.down {
        driver.push_event(down.at_ns, EvKind::Crash);
        if let Some(dur) = down.dur_ns {
            driver.push_event(down.at_ns + dur, EvKind::Restart);
        }
    }

    while let Some(Reverse((t_ns, seq))) = driver.heap.pop() {
        driver.advance_to(t_ns);
        driver.last_event_ns = t_ns;
        match driver.events[seq as usize] {
            EvKind::Arrival(r) => driver.on_arrival(r, t_ns),
            EvKind::Timeout { req, attempt } => driver.on_timeout(req, attempt, t_ns),
            EvKind::Retry(r) => driver.on_retry(r, t_ns),
            EvKind::Hedge(r) => driver.on_hedge(r, t_ns),
            EvKind::Crash => driver.on_crash(t_ns),
            EvKind::Restart => driver.on_restart(t_ns),
        }
    }
    driver.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_once, PolicyKind};
    use nest_topology::presets;
    use nest_workloads::{FleetLoad, ServeLoad};

    fn serve_spec(requests: u32, rate: f64) -> ServeSpec {
        ServeSpec {
            rate,
            requests,
            service_ms: 0.5,
            ..ServeSpec::default()
        }
    }

    fn fleet_cfg() -> SimConfig {
        SimConfig::new(presets::xeon_5218()).policy(PolicyKind::Nest)
    }

    fn fleet_wl(fleet: &str, requests: u32, rate: f64) -> FleetLoad {
        let spec = nest_fleet::FleetSpec::from_params(&nest_scenario_params(fleet)).unwrap();
        FleetLoad::new(spec, Box::new(ServeLoad::new(serve_spec(requests, rate))))
    }

    /// Parses `k=v,...` into param pairs (scenario-grammar stand-in).
    fn nest_scenario_params(s: &str) -> Vec<(String, String)> {
        if s.is_empty() {
            return Vec::new();
        }
        s.split(',')
            .map(|kv| {
                let (k, v) = kv.split_once('=').expect("k=v");
                (k.to_string(), v.to_string())
            })
            .collect()
    }

    #[test]
    fn fleet_run_completes_all_requests() {
        let wl = fleet_wl("hosts=3,lb=warmth", 240, 2_000.0);
        let r = run_once(&fleet_cfg(), &wl);
        let fleet = r.fleet.as_ref().expect("fleet stats present");
        let m = &fleet.metrics;
        assert_eq!(m.offered, 240);
        assert_eq!(m.completed + m.failed + m.shed, 240);
        assert_eq!(m.crashes, 0);
        assert!(m.completed > 200, "healthy fleet answers: {m:?}");
        assert_eq!(m.hosts, 3);
        assert!(m.hist.len() == m.completed);
        assert!(r.time_s > 0.0);
        assert!(r.energy_j > 0.0);
        assert_eq!(r.serve.runs, 1);
        let s = r.summarize();
        assert!(s.fleet.is_some(), "summary carries the fleet block");
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let mk = || fleet_wl("hosts=2,retry=2,hedge=p95", 150, 1_500.0);
        let a = run_once(&fleet_cfg(), &mk());
        let b = run_once(&fleet_cfg(), &mk());
        let (fa, fb) = (a.fleet.unwrap(), b.fleet.unwrap());
        assert_eq!(fa, fb);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.serve, b.serve);
    }

    #[test]
    fn host_crash_times_out_retries_and_recovers() {
        // Kill the busier of 2 hosts mid-stream with retries enabled: the
        // in-flight work on the dead host times out, retries land on the
        // survivor, and the restart comes back cold and re-warms.
        let wl = fleet_wl(
            "hosts=2,retry=2,timeout=20ms,hostdown=1@40ms:60ms",
            300,
            3_000.0,
        );
        let r = run_once(&fleet_cfg(), &wl);
        let m = r.fleet.as_ref().unwrap().metrics.clone();
        assert_eq!(m.crashes, 1);
        assert_eq!(m.restarts, 1);
        assert_eq!(m.offered, 300);
        assert_eq!(m.completed + m.failed + m.shed, 300);
        assert!(m.timeouts > 0, "lost in-flight work must time out: {m:?}");
        assert!(m.retries > 0, "timeouts must drive retries: {m:?}");
        assert!(
            m.completed >= 280,
            "retries keep goodput through the failover: {m:?}"
        );
        assert!(
            m.warm_recoveries <= m.restarts,
            "warm recoveries bound by restarts"
        );
    }

    #[test]
    fn hedging_duplicates_slow_requests() {
        let wl = fleet_wl("hosts=2,hedge=1ms,retry=0,timeout=40ms", 200, 2_000.0);
        let r = run_once(&fleet_cfg(), &wl);
        let m = &r.fleet.as_ref().unwrap().metrics;
        assert!(m.hedges > 0, "a 1ms hedge trigger must fire: {m:?}");
        assert!(m.hedge_wins <= m.hedges);
        assert_eq!(m.completed + m.failed + m.shed, m.offered);
    }

    #[test]
    fn single_host_fleet_matches_request_count() {
        let wl = fleet_wl("hosts=1", 100, 1_000.0);
        let r = run_once(&fleet_cfg(), &wl);
        let m = &r.fleet.as_ref().unwrap().metrics;
        assert_eq!(m.offered, 100);
        assert!(m.completed >= 95, "{m:?}");
        assert_eq!(m.host_hist.len(), 1);
        assert_eq!(m.host_hist[0].len(), m.completed + m.late_completions);
    }
}
