//! Single-run simulation driver.
//!
//! [`run_once`] wires an [`Engine`] with the standard probe set
//! (underload, frequency residency, placement counts, wakeup latency,
//! optionally a full execution trace), executes a workload, and returns a
//! [`RunResult`] carrying every metric the paper's figures need.

use std::cell::RefCell;
use std::rc::Rc;

use nest_engine::{Engine, EngineConfig, RunOutcome};
use nest_faults::FaultPlan;
use nest_freq::Governor;
use nest_metrics::{
    ExecutionTrace, ExecutionTraceProbe, FreqResidency, FreqResidencyProbe, PhaseBreakdownProbe,
    PhaseMetrics, PlacementCounts, PlacementProbe, ServeMetrics, ServeMetricsProbe, UnderloadData,
    UnderloadProbe, WakeupLatencies, WakeupLatencyProbe,
};
use nest_metrics::{FleetRunStats, FleetSummary, RunSummary, ServeSummary};
use nest_obs::{
    DecisionMetrics, DecisionMetricsProbe, InvariantChecker, InvariantCounts, TimeSeries,
    TimeSeriesSampler,
};
use nest_sched::{Cfs, CfsParams, Nest, NestParams, SchedPolicy, Smove, SmoveParams};
use nest_simcore::rng::mix64;
use nest_simcore::{CoreId, Probe, SimRng, Time};
use nest_topology::MachineSpec;
use nest_workloads::Workload;

/// Which scheduling policy to run.
#[derive(Clone, Debug)]
pub enum PolicyKind {
    /// Linux CFS baseline (§2.1).
    Cfs,
    /// CFS with explicit parameters.
    CfsWith(CfsParams),
    /// The Nest scheduler with Table 1 defaults (§3).
    Nest,
    /// Nest with explicit parameters (ablations, §5.2/5.3).
    NestWith(NestParams),
    /// The Smove baseline (§2.2).
    Smove,
    /// Smove with explicit parameters.
    SmoveWith(SmoveParams),
}

impl PolicyKind {
    /// Short label used in figures ("CFS", "Nest", "Smove").
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Cfs | PolicyKind::CfsWith(_) => "CFS",
            PolicyKind::Nest | PolicyKind::NestWith(_) => "Nest",
            PolicyKind::Smove | PolicyKind::SmoveWith(_) => "Smove",
        }
    }

    fn build(&self, n_cores: usize) -> Box<dyn SchedPolicy> {
        match self {
            PolicyKind::Cfs => Box::new(Cfs::new()),
            PolicyKind::CfsWith(p) => Box::new(Cfs::with_params(p.clone())),
            PolicyKind::Nest => Box::new(Nest::new(n_cores)),
            PolicyKind::NestWith(p) => Box::new(Nest::with_params(n_cores, p.clone())),
            PolicyKind::Smove => Box::new(Smove::new()),
            PolicyKind::SmoveWith(p) => Box::new(Smove::with_params(p.clone())),
        }
    }
}

/// Configuration of a simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Machine preset (Table 2).
    pub machine: MachineSpec,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Power governor.
    pub governor: Governor,
    /// Base RNG seed; [`run_many`] offsets it per run.
    pub seed: u64,
    /// Safety horizon.
    pub horizon: Time,
    /// Placement-to-enqueue latency (the §3.4 race window).
    pub placement_latency_ns: u64,
    /// Core initial tasks launch from (and Nest's reserve-search anchor).
    pub initial_core: CoreId,
    /// Collect a full execution trace (memory-heavy; figures 2/8 only).
    pub collect_trace: bool,
    /// Fault-injection plan. The default (empty) plan adds no events and
    /// draws no randomness, leaving runs byte-identical to a build
    /// without fault support.
    pub faults: FaultPlan,
    /// Deterministic watchdog: abort the run (keeping partial results)
    /// after dispatching this many engine events.
    pub event_budget: Option<u64>,
    /// Wall-clock watchdog; aborted results are *not* deterministic.
    pub wall_limit: Option<std::time::Duration>,
}

impl SimConfig {
    /// A CFS-schedutil configuration for `machine` (the paper's baseline).
    pub fn new(machine: MachineSpec) -> SimConfig {
        SimConfig {
            machine,
            policy: PolicyKind::Cfs,
            governor: Governor::Schedutil,
            seed: 1,
            horizon: Time::from_secs(600),
            placement_latency_ns: 1_500,
            initial_core: CoreId(0),
            collect_trace: false,
            faults: FaultPlan::default(),
            event_budget: None,
            wall_limit: None,
        }
    }

    /// Sets the policy.
    pub fn policy(mut self, policy: PolicyKind) -> SimConfig {
        self.policy = policy;
        self
    }

    /// Sets the governor.
    pub fn governor(mut self, governor: Governor) -> SimConfig {
        self.governor = governor;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> SimConfig {
        self.seed = seed;
        self
    }

    /// Sets the horizon.
    pub fn horizon(mut self, horizon: Time) -> SimConfig {
        self.horizon = horizon;
        self
    }

    /// Sets the placement-to-enqueue latency.
    pub fn placement_latency_ns(mut self, ns: u64) -> SimConfig {
        self.placement_latency_ns = ns;
        self
    }

    /// Sets the core initial tasks launch from.
    pub fn initial_core(mut self, core: CoreId) -> SimConfig {
        self.initial_core = core;
        self
    }

    /// Enables execution-trace collection.
    pub fn with_trace(mut self) -> SimConfig {
        self.collect_trace = true;
        self
    }

    /// Sets the fault-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> SimConfig {
        self.faults = faults;
        self
    }

    /// Sets the deterministic event-budget watchdog.
    pub fn event_budget(mut self, budget: Option<u64>) -> SimConfig {
        self.event_budget = budget;
        self
    }

    /// Sets the wall-clock watchdog.
    pub fn wall_limit(mut self, limit: Option<std::time::Duration>) -> SimConfig {
        self.wall_limit = limit;
        self
    }

    /// Figure label like `"Nest sched"`.
    pub fn label(&self) -> String {
        format!("{} {}", self.policy.label(), self.governor.short_name())
    }
}

/// All metrics from one run.
#[derive(Debug)]
pub struct RunResult {
    /// Wall-clock completion time in (simulated) seconds.
    pub time_s: f64,
    /// CPU energy in joules.
    pub energy_j: f64,
    /// Underload data (§5.2).
    pub underload: UnderloadData,
    /// Frequency residency (Figures 6/11).
    pub freq: FreqResidency,
    /// Placement accounting.
    pub placements: PlacementCounts,
    /// Wakeup latencies (schbench).
    pub latency: WakeupLatencies,
    /// Execution trace, when requested.
    pub trace: Option<ExecutionTrace>,
    /// Scheduling-decision metrics (telemetry only; deliberately not part
    /// of [`RunSummary`], which is cached and serialized into artifacts).
    pub decision: DecisionMetrics,
    /// Request-serving metrics. Default (all-zero) unless the workload
    /// carried serve specs; the scalar [`ServeSummary`] projection *does*
    /// travel in [`RunSummary`], so serving figures work from the cache.
    pub serve: ServeMetrics,
    /// Total tasks created.
    pub total_tasks: usize,
    /// Whether the horizon cut the run short.
    pub hit_horizon: bool,
    /// Whether a watchdog aborted the run (partial results).
    pub aborted: bool,
    /// Kernel-state invariant tallies from the always-on counting
    /// checker (telemetry only, like `decision`).
    pub invariants: InvariantCounts,
    /// Per-request latency-phase breakdown (§PAPER Fig. 2's "where did
    /// the time go" lens). Default (all-zero) unless the workload served
    /// requests; telemetry only, never part of [`RunSummary`].
    pub phases: PhaseMetrics,
    /// Interval-sampled machine state (utilization, frequency, nest
    /// occupancy, power). Always collected; telemetry only.
    pub timeseries: TimeSeries,
    /// Fleet (multi-host) client-side statistics. `None` unless the
    /// workload ran under a `fleet:` front-end; for fleet runs, see
    /// [`crate::fleet`] for what the merged single-host fields mean.
    pub fleet: Option<FleetRunStats>,
}

impl RunResult {
    /// Reduces the run to its plain-data summary (the form the experiment
    /// harness caches and serializes). The execution trace and raw latency
    /// samples are dropped; everything a non-trace figure reads survives.
    pub fn summarize(&self) -> RunSummary {
        let mut summary = RunSummary::collect(
            self.time_s,
            self.energy_j,
            &self.underload,
            &self.freq,
            &self.placements,
            &self.latency,
            self.total_tasks,
            self.hit_horizon,
        );
        if self.serve.runs > 0 {
            summary.serve = Some(ServeSummary::from_metrics(&self.serve));
        }
        if let Some(fleet) = &self.fleet {
            summary.fleet = Some(FleetSummary::from_stats(fleet));
        }
        summary
    }
}

fn take<T: Default>(cell: &Rc<RefCell<T>>) -> T {
    std::mem::take(&mut cell.borrow_mut())
}

/// Shared handles to the standard probe rig's metric cells, kept until
/// the run finishes and [`collect_result`] drains them.
///
/// The rig is built by [`build_engine`] in one fixed attachment order —
/// the order [`Engine::snapshot`] records and
/// [`crate::snapshot::restore`] must replay exactly.
pub(crate) struct ProbeRig {
    underload: Rc<RefCell<UnderloadData>>,
    freq: Rc<RefCell<FreqResidency>>,
    placements: Rc<RefCell<PlacementCounts>>,
    latency: Rc<RefCell<WakeupLatencies>>,
    decision: Rc<RefCell<DecisionMetrics>>,
    invariants: Rc<RefCell<InvariantCounts>>,
    serve: Option<Rc<RefCell<ServeMetrics>>>,
    phases: Option<Rc<RefCell<PhaseMetrics>>>,
    trace: Option<Rc<RefCell<ExecutionTrace>>>,
    timeseries: Rc<RefCell<TimeSeries>>,
}

/// Builds an [`Engine`] for `cfg` with the standard probe rig attached
/// (in the fixed order snapshot restore relies on), plus any caller
/// probes. `serve_slos` carries the per-spec SLOs when the workload
/// serves requests; the serve probe is attached only then, so
/// non-serving runs draw the same probe set (and bytes) as before the
/// serving subsystem existed.
pub(crate) fn build_engine(
    cfg: &SimConfig,
    serve_slos: Vec<u64>,
    extra_probes: Vec<Box<dyn Probe>>,
) -> (Engine, ProbeRig) {
    let n_cores = cfg.machine.n_cores();
    let engine_cfg = EngineConfig::new(cfg.machine.clone())
        .governor(cfg.governor)
        .seed(cfg.seed)
        .horizon(cfg.horizon)
        .placement_latency_ns(cfg.placement_latency_ns)
        .initial_core(cfg.initial_core)
        .faults(cfg.faults.clone())
        .event_budget(cfg.event_budget)
        .wall_limit(cfg.wall_limit);
    let mut engine = Engine::new(engine_cfg, cfg.policy.build(n_cores));

    let (up, underload) = UnderloadProbe::new(n_cores);
    engine.add_probe(Box::new(up));
    let initial_freq = cfg.governor.idle_floor(&cfg.machine.freq);
    let (fp, freq) = FreqResidencyProbe::new(
        n_cores,
        &cfg.machine.freq.residency_buckets_ghz,
        initial_freq,
    );
    engine.add_probe(Box::new(fp));
    let (pp, placements) = PlacementProbe::new(n_cores);
    engine.add_probe(Box::new(pp));
    let (lp, latency) = WakeupLatencyProbe::new();
    engine.add_probe(Box::new(lp));
    let topo = nest_topology::Topology::new(cfg.machine.clone());
    let (ccx_of, socket_of): (Vec<u32>, Vec<u32>) = (0..n_cores)
        .map(|c| {
            let core = CoreId::from_index(c);
            (
                topo.ccx_of(core).index() as u32,
                topo.socket_of(core).index() as u32,
            )
        })
        .unzip();
    let (dp, decision) = DecisionMetricsProbe::with_domains(ccx_of.clone(), socket_of.clone());
    engine.add_probe(Box::new(dp));
    let (ic, invariants) = InvariantChecker::new(
        n_cores,
        cfg.machine.freq.fmin.as_khz(),
        cfg.machine.freq.fmax().as_khz(),
    );
    engine.add_probe(Box::new(ic));
    let (serve, phases) = if serve_slos.is_empty() {
        (None, None)
    } else {
        let (sp, sh) = ServeMetricsProbe::new(serve_slos);
        engine.add_probe(Box::new(sp));
        let (php, ph) = PhaseBreakdownProbe::new(&cfg.machine, ccx_of.clone());
        engine.add_probe(Box::new(php));
        (Some(sh), Some(ph))
    };
    let trace = if cfg.collect_trace {
        let (tp, th) = ExecutionTraceProbe::new(n_cores, initial_freq);
        engine.add_probe(Box::new(tp));
        Some(th)
    } else {
        None
    };
    let (tsp, timeseries) = TimeSeriesSampler::new(&cfg.machine, ccx_of, socket_of);
    engine.add_probe(Box::new(tsp));
    for p in extra_probes {
        engine.add_probe(p);
    }

    let rig = ProbeRig {
        underload,
        freq,
        placements,
        latency,
        decision,
        invariants,
        serve,
        phases,
        trace,
        timeseries,
    };
    (engine, rig)
}

/// Builds the workload's tasks into `engine` and injects materialized
/// request arrivals. Fresh runs only — a restored engine repopulates
/// tasks and pending injections from the snapshot instead.
pub(crate) fn setup_workload(engine: &mut Engine, cfg: &SimConfig, workload: &dyn Workload) {
    let mut wl_rng = SimRng::new(cfg.seed ^ 0xD00D_F00D);
    let tasks = workload.build(engine, &mut wl_rng);
    let serve_specs = workload.serve_specs();
    assert!(
        !tasks.is_empty() || !serve_specs.is_empty(),
        "workload built no tasks"
    );
    for t in tasks {
        engine.spawn(t);
    }
    // Requests arrive through the engine's event queue at materialized
    // times: a pure function of (spec, plan index, base seed), never of
    // engine state, so arrival streams are byte-identical at any worker
    // count and under any colocation.
    for (plan, spec) in serve_specs.iter().enumerate() {
        for (at_ns, task) in nest_serve::materialize(spec, plan, cfg.seed) {
            engine.inject_at(Time::from_nanos(at_ns), task);
        }
    }
}

/// Drains the probe rig into a [`RunResult`] once the run is over.
pub(crate) fn collect_result(outcome: &RunOutcome, rig: ProbeRig) -> RunResult {
    let invariants = rig.invariants.borrow().clone();
    let serve = match rig.serve {
        Some(h) => {
            let mut m = take(&h);
            m.energy_j = outcome.energy_joules;
            m
        }
        None => ServeMetrics::default(),
    };
    RunResult {
        time_s: outcome.finished_at.as_secs_f64(),
        energy_j: outcome.energy_joules,
        underload: take(&rig.underload),
        freq: take(&rig.freq),
        placements: take(&rig.placements),
        latency: take(&rig.latency),
        trace: rig.trace.map(|h| take(&h)),
        decision: take(&rig.decision),
        serve,
        total_tasks: outcome.total_tasks,
        hit_horizon: outcome.hit_horizon,
        aborted: outcome.aborted,
        invariants,
        phases: rig.phases.map(|h| take(&h)).unwrap_or_default(),
        timeseries: take(&rig.timeseries),
        fleet: None,
    }
}

/// Runs `workload` once under `cfg`.
pub fn run_once(cfg: &SimConfig, workload: &dyn Workload) -> RunResult {
    run_once_with(cfg, workload, Vec::new())
}

/// Runs `workload` once under `cfg` with additional caller probes
/// attached alongside the standard set (e.g. `nest-sim trace`'s
/// `TraceCollector`). Probes only observe, so extra probes cannot change
/// the simulation outcome.
pub fn run_once_with(
    cfg: &SimConfig,
    workload: &dyn Workload,
    extra_probes: Vec<Box<dyn Probe>>,
) -> RunResult {
    if let Some(fleet) = workload.fleet_spec() {
        return crate::fleet::run_fleet(cfg, workload, &fleet, extra_probes);
    }
    let slos = workload.serve_specs().iter().map(|s| s.slo_ns).collect();
    let (mut engine, rig) = build_engine(cfg, slos, extra_probes);
    setup_workload(&mut engine, cfg, workload);
    let outcome = engine.run();
    collect_result(&outcome, rig)
}

/// Derives the seed of run `i` from a base seed.
///
/// A SplitMix-style mix rather than an additive offset, so per-run streams
/// are statistically independent and a run's seed is a pure function of
/// `(base, i)` — the property the parallel harness relies on to produce
/// byte-identical results regardless of worker count or completion order.
pub fn run_seed(base: u64, i: usize) -> u64 {
    mix64(base, i as u64)
}

/// Runs `workload` `runs` times with per-run derived seeds.
pub fn run_many(cfg: &SimConfig, workload: &dyn Workload, runs: usize) -> Vec<RunResult> {
    (0..runs)
        .map(|i| {
            let c = cfg.clone().seed(run_seed(cfg.seed, i));
            run_once(&c, workload)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;
    use nest_workloads::configure::Configure;

    fn quick_cfg() -> SimConfig {
        SimConfig::new(presets::xeon_5218())
    }

    #[test]
    fn run_once_produces_metrics() {
        let r = run_once(&quick_cfg(), &Configure::named("gdb"));
        assert!(r.time_s > 0.0);
        assert!(r.energy_j > 0.0);
        assert!(r.total_tasks > 50);
        assert!(!r.hit_horizon);
        assert!(r.freq.total_busy_ns() > 0);
        assert!(r.placements.total() > 0);
        assert!(r.trace.is_none());
        assert_eq!(r.phases.runs, 0, "non-serving runs skip the phase probe");
        assert!(!r.timeseries.is_empty(), "time series always sampled");
    }

    #[test]
    fn trace_collection_is_optional() {
        let cfg = quick_cfg().with_trace();
        let r = run_once(&cfg, &Configure::named("gdb"));
        let trace = r.trace.expect("trace requested");
        assert!(!trace.spans.is_empty());
    }

    #[test]
    fn run_many_varies_seeds() {
        let rs = run_many(&quick_cfg(), &Configure::named("gdb"), 3);
        assert_eq!(rs.len(), 3);
        // With jittered workloads, times should not be all identical.
        let t0 = rs[0].time_s;
        assert!(rs.iter().any(|r| (r.time_s - t0).abs() > 1e-12));
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(quick_cfg().label(), "CFS sched");
        assert_eq!(
            quick_cfg()
                .policy(PolicyKind::Nest)
                .governor(Governor::Performance)
                .label(),
            "Nest perf"
        );
    }

    #[test]
    fn builder_setters_cover_engine_fields() {
        let cfg = quick_cfg()
            .horizon(Time::from_secs(30))
            .placement_latency_ns(2_500)
            .initial_core(CoreId(4));
        assert_eq!(cfg.horizon, Time::from_secs(30));
        assert_eq!(cfg.placement_latency_ns, 2_500);
        assert_eq!(cfg.initial_core, CoreId(4));
    }

    #[test]
    fn decision_metrics_are_collected() {
        let cfg = quick_cfg().policy(PolicyKind::Nest);
        let r = run_once(&cfg, &Configure::named("gdb"));
        assert_eq!(r.decision.runs, 1);
        assert!(r.decision.sim_ns > 0);
        assert!(r.decision.total_placements() > 0);
        assert!(r.decision.latency_samples > 0);
        assert!(r.decision.nest_transitions > 0, "nest lifecycle traced");
    }

    #[test]
    fn extra_probes_observe_without_perturbing() {
        let cfg = quick_cfg();
        let base = run_once(&cfg, &Configure::named("gdb"));
        let (c, log) = nest_obs::TraceCollector::new(1 << 16);
        let r = run_once_with(&cfg, &Configure::named("gdb"), vec![Box::new(c)]);
        assert_eq!(r.time_s, base.time_s);
        assert_eq!(r.energy_j, base.energy_j);
        assert!(!log.borrow().events.is_empty());
    }

    #[test]
    fn invariants_hold_on_clean_and_faulted_runs() {
        let clean = run_once(
            &quick_cfg().policy(PolicyKind::Nest),
            &Configure::named("gdb"),
        );
        assert_eq!(clean.invariants.violations, 0, "{:?}", clean.invariants);
        assert!(clean.invariants.completed);
        assert!(!clean.aborted);

        let faulted_cfg = quick_cfg()
            .policy(PolicyKind::Nest)
            .faults(FaultPlan::parse("faults:hotplug=2@50ms:100ms,throttle=s0:0.8@80ms").unwrap());
        let faulted = run_once(&faulted_cfg, &Configure::named("gdb"));
        assert_eq!(faulted.invariants.violations, 0, "{:?}", faulted.invariants);
        assert!(faulted.invariants.completed);
    }

    #[test]
    fn empty_fault_plan_leaves_runs_byte_identical() {
        let base = run_once(&quick_cfg(), &Configure::named("gdb"));
        let cfg = quick_cfg()
            .faults(FaultPlan::default())
            .event_budget(None)
            .wall_limit(None);
        let same = run_once(&cfg, &Configure::named("gdb"));
        assert_eq!(base.time_s, same.time_s);
        assert_eq!(base.energy_j, same.energy_j);
    }

    #[test]
    fn event_budget_surfaces_as_aborted() {
        let cfg = quick_cfg().event_budget(Some(200));
        let r = run_once(&cfg, &Configure::named("gdb"));
        assert!(r.aborted);
        assert!(r.time_s > 0.0, "partial results survive");
    }

    #[test]
    fn serving_run_measures_requests() {
        use nest_workloads::{ServeLoad, ServeSpec};
        let spec = ServeSpec {
            rate: 2_000.0,
            requests: 300,
            service_ms: 0.5,
            ..ServeSpec::default()
        };
        let cfg = quick_cfg().policy(PolicyKind::Nest);
        let r = run_once(&cfg, &ServeLoad::new(spec));
        assert_eq!(r.serve.runs, 1);
        assert_eq!(r.serve.offered, 300);
        assert_eq!(r.serve.completed, 300, "all requests finish");
        assert_eq!(r.serve.hist.len(), 300);
        assert!(r.serve.hist.quantile(0.99).is_some());
        assert!(r.serve.energy_j > 0.0);
        assert_eq!(r.phases.runs, 1, "serving runs attribute latency");
        assert_eq!(r.phases.requests, 300);
        assert_eq!(r.phases.identity_violations, 0);
        assert_eq!(
            r.phases.total.sum,
            (0..nest_metrics::N_PHASES)
                .map(|i| r.phases.phases[i].sum)
                .sum::<u64>(),
            "phase durations sum to measured latency"
        );
        let summary = r.summarize();
        let s = summary.serve.expect("serving summary present");
        assert_eq!(s.offered, 300);
        assert!(s.p999_ns.unwrap() >= s.p50_ns.unwrap());
    }

    #[test]
    fn serving_runs_are_deterministic_and_colocate() {
        use nest_workloads::{Multi, ServeLoad, ServeSpec, Workload};
        let mk = || {
            let spec = ServeSpec {
                rate: 1_000.0,
                requests: 100,
                fanout: 3,
                ..ServeSpec::default()
            };
            Multi::new(vec![
                Box::new(ServeLoad::new(spec)) as Box<dyn Workload>,
                Box::new(nest_workloads::hackbench::Hackbench::new(Default::default())),
            ])
        };
        let a = run_once(&quick_cfg(), &mk());
        let b = run_once(&quick_cfg(), &mk());
        assert_eq!(a.serve, b.serve);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy_j, b.energy_j);
        assert_eq!(a.serve.offered, 100);
        assert_eq!(a.serve.completed, 100, "fan-out requests complete");
    }

    #[test]
    fn non_serving_runs_carry_no_serve_block() {
        let r = run_once(&quick_cfg(), &Configure::named("gdb"));
        assert_eq!(r.serve.runs, 0);
        assert!(r.summarize().serve.is_none());
    }

    #[test]
    fn nest_policy_builds_and_runs() {
        let cfg = quick_cfg().policy(PolicyKind::Nest);
        let r = run_once(&cfg, &Configure::named("gdb"));
        assert!(!r.hit_horizon);
        // Nest must actually use its nest paths.
        use nest_simcore::PlacementPath;
        let nest_hits = r.placements.count(PlacementPath::NestPrimary)
            + r.placements.count(PlacementPath::NestReserve);
        assert!(nest_hits > 0, "nest never used its nests");
    }
}
