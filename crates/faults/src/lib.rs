#![deny(missing_docs)]
//! Deterministic fault injection for the nest simulator.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (the same
//! `k=v,…` surface the scenario registries use, e.g.
//! `faults:hotplug=2@50ms,throttle=s0:0.8`) and describes a set of
//! perturbations to inject into a run:
//!
//! * **Core hotplug** — take cores offline at a point in time (and
//!   optionally bring them back), forcing the scheduler to migrate
//!   work off dead cores and to stop placing on them.
//! * **Thermal throttling** — cap a socket's turbo table at a factor
//!   of its nominal ceiling for a window of time.
//! * **Timer jitter** — perturb the scheduler tick by a bounded,
//!   seeded random delay.
//! * **Stragglers** — spawn background interference tasks that
//!   alternate compute and sleep, competing with the workload.
//!
//! [`FaultSchedule::materialize`] turns a plan into a time-sorted list
//! of concrete [`FaultAction`]s for a specific machine and seed. The
//! expansion is a pure function of `(plan, topology, seed)` — the same
//! inputs always offline the same cores at the same instants — which is
//! what lets the parallel harness reproduce fault runs byte-identically
//! at any worker count.
//!
//! An empty plan is guaranteed inert: it materializes to zero actions,
//! draws nothing from any RNG, and renders to the empty string, so
//! fault-free runs are byte-identical to builds that predate this crate.

mod plan;
mod schedule;

pub use plan::{FaultError, FaultPlan, HotplugFault, StragglerFault, ThrottleFault};
pub use schedule::{FaultAction, FaultSchedule, TimedFault};
