//! The fault-plan spec grammar and its canonical rendering.
//!
//! A plan is a comma-separated list of `key=value` clauses, optionally
//! prefixed by the `faults:` registry head:
//!
//! ```text
//! faults:hotplug=2@50ms,throttle=s0:0.8,jitter=20us,stragglers=4@10ms:80ms
//! ```
//!
//! Clause grammar (`TIME` is an integer with a mandatory `ns`/`us`/`ms`/`s`
//! suffix; `@TIME` is an onset, `:TIME` after an onset is a duration):
//!
//! * `hotplug=N@TIME[:DUR]` — offline `N` cores at `TIME`; back online
//!   after `DUR` (omitted: they stay offline for the rest of the run).
//! * `throttle=sK:F[@TIME[:DUR]][+sK:F…]` — cap socket `K`'s turbo
//!   ceilings at factor `F` (0 < F ≤ 1) from `TIME` (default `0ns`) for
//!   `DUR` (omitted: rest of run). `+` joins clauses for several sockets.
//! * `jitter=TIME` — delay each scheduler tick by a seeded uniform
//!   random amount in `[0, TIME)`.
//! * `stragglers=N[@TIME[:DUR]]` — spawn `N` interference tasks at
//!   `TIME` (default `0ns`), each alternating compute and sleep for
//!   `DUR` (default `50ms`) before exiting.

use std::fmt;

use nest_simcore::time::{MICROSEC, MILLISEC, SEC};

/// An error parsing or validating a fault-plan spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultError {
    clause: String,
    reason: String,
}

impl FaultError {
    fn new(clause: &str, reason: impl Into<String>) -> FaultError {
        FaultError {
            clause: clause.to_string(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause \"{}\": {}", self.clause, self.reason)
    }
}

impl std::error::Error for FaultError {}

/// A core-hotplug fault: `count` cores go offline at `at_ns`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotplugFault {
    /// Number of cores to offline (the concrete cores are chosen by
    /// [`crate::FaultSchedule::materialize`] from the seed; core 0 is
    /// never offlined and at least half the machine stays online).
    pub count: u32,
    /// Onset, in nanoseconds since simulation start.
    pub at_ns: u64,
    /// How long the cores stay offline; `None` means the rest of the run.
    pub dur_ns: Option<u64>,
}

/// A thermal-throttling fault: one socket's turbo table is capped.
#[derive(Clone, Debug, PartialEq)]
pub struct ThrottleFault {
    /// Socket index to throttle.
    pub socket: usize,
    /// Cap factor in `(0, 1]`: every turbo-ladder ceiling is scaled by
    /// this factor while the throttle is active (floored at the
    /// machine's minimum frequency).
    pub factor: f64,
    /// Onset, in nanoseconds since simulation start.
    pub at_ns: u64,
    /// Throttle window length; `None` means the rest of the run.
    pub dur_ns: Option<u64>,
}

/// A straggler fault: background interference tasks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StragglerFault {
    /// Number of interference tasks to spawn.
    pub count: u32,
    /// Spawn time, in nanoseconds since simulation start.
    pub at_ns: u64,
    /// How long each straggler alternates compute and sleep before
    /// exiting.
    pub dur_ns: u64,
}

/// Default straggler lifetime when the spec omits a duration.
pub(crate) const DEFAULT_STRAGGLER_DUR_NS: u64 = 50 * MILLISEC;

/// A parsed, validated fault plan.
///
/// The default plan is empty and inert: it renders to `""`, materializes
/// to no actions, and must leave simulation output byte-identical to a
/// run with no fault support at all.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Core-hotplug fault, if configured.
    pub hotplug: Option<HotplugFault>,
    /// Per-socket throttling faults (at most one per socket).
    pub throttle: Vec<ThrottleFault>,
    /// Scheduler-tick jitter amplitude in nanoseconds; `0` disables it.
    pub jitter_ns: u64,
    /// Straggler fault, if configured.
    pub stragglers: Option<StragglerFault>,
}

impl FaultPlan {
    /// Returns `true` if the plan configures no faults at all.
    pub fn is_empty(&self) -> bool {
        self.hotplug.is_none()
            && self.throttle.is_empty()
            && self.jitter_ns == 0
            && self.stragglers.is_none()
    }

    /// Parses a fault spec. Accepts the bare clause list
    /// (`hotplug=2@50ms`), the registry form (`faults:hotplug=2@50ms`),
    /// a lone `faults`, or an empty string (both of which yield the
    /// empty plan).
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultError> {
        let spec = spec.trim();
        let body = match spec.split_once(':') {
            Some((head, rest)) if head.trim().eq_ignore_ascii_case("faults") => rest,
            _ if spec.eq_ignore_ascii_case("faults") || spec.is_empty() => "",
            _ => spec,
        };
        let mut pairs = Vec::new();
        if !body.trim().is_empty() {
            for token in body.split(',') {
                let token = token.trim();
                let (k, v) = token
                    .split_once('=')
                    .ok_or_else(|| FaultError::new(token, "expected key=value"))?;
                pairs.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        FaultPlan::from_params(&pairs)
    }

    /// Builds a plan from already-tokenized `key=value` pairs (the form
    /// the scenario registry's spec parser produces).
    pub fn from_params(params: &[(String, String)]) -> Result<FaultPlan, FaultError> {
        let mut plan = FaultPlan::default();
        for (k, v) in params {
            match k.to_ascii_lowercase().as_str() {
                "hotplug" => {
                    if plan.hotplug.is_some() {
                        return Err(FaultError::new(v, "duplicate hotplug clause"));
                    }
                    plan.hotplug = Some(parse_hotplug(v)?);
                }
                "throttle" => {
                    if !plan.throttle.is_empty() {
                        return Err(FaultError::new(v, "duplicate throttle clause"));
                    }
                    plan.throttle = parse_throttle(v)?;
                }
                "jitter" => {
                    if plan.jitter_ns != 0 {
                        return Err(FaultError::new(v, "duplicate jitter clause"));
                    }
                    plan.jitter_ns = parse_dur(v, v)?;
                    if plan.jitter_ns == 0 {
                        return Err(FaultError::new(v, "jitter must be positive"));
                    }
                }
                "stragglers" => {
                    if plan.stragglers.is_some() {
                        return Err(FaultError::new(v, "duplicate stragglers clause"));
                    }
                    plan.stragglers = Some(parse_stragglers(v)?);
                }
                other => {
                    return Err(FaultError::new(
                        other,
                        "unknown fault key (expected hotplug, throttle, jitter, or stragglers)",
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Renders the plan canonically: fixed clause order
    /// (hotplug, throttle, jitter, stragglers), throttle clauses sorted
    /// by socket, durations in the largest exact unit. The empty plan
    /// renders to `""`. `parse(canonical()) == *self` for any valid plan.
    pub fn canonical(&self) -> String {
        let mut parts = Vec::new();
        if let Some(h) = &self.hotplug {
            let mut s = format!("hotplug={}@{}", h.count, fmt_dur(h.at_ns));
            if let Some(d) = h.dur_ns {
                s.push(':');
                s.push_str(&fmt_dur(d));
            }
            parts.push(s);
        }
        if !self.throttle.is_empty() {
            let mut ts = self.throttle.clone();
            ts.sort_by_key(|t| t.socket);
            let joined: Vec<String> = ts
                .iter()
                .map(|t| {
                    let mut s = format!("s{}:{}", t.socket, t.factor);
                    if t.at_ns != 0 || t.dur_ns.is_some() {
                        s.push('@');
                        s.push_str(&fmt_dur(t.at_ns));
                    }
                    if let Some(d) = t.dur_ns {
                        s.push(':');
                        s.push_str(&fmt_dur(d));
                    }
                    s
                })
                .collect();
            parts.push(format!("throttle={}", joined.join("+")));
        }
        if self.jitter_ns != 0 {
            parts.push(format!("jitter={}", fmt_dur(self.jitter_ns)));
        }
        if let Some(s) = &self.stragglers {
            let mut out = format!("stragglers={}", s.count);
            if s.at_ns != 0 || s.dur_ns != DEFAULT_STRAGGLER_DUR_NS {
                out.push('@');
                out.push_str(&fmt_dur(s.at_ns));
            }
            if s.dur_ns != DEFAULT_STRAGGLER_DUR_NS {
                out.push(':');
                out.push_str(&fmt_dur(s.dur_ns));
            }
            parts.push(out);
        }
        parts.join(",")
    }

    /// Renders the plan with the `faults:` registry head, or `""` for
    /// the empty plan.
    pub fn canonical_spec(&self) -> String {
        let body = self.canonical();
        if body.is_empty() {
            String::new()
        } else {
            format!("faults:{body}")
        }
    }
}

fn parse_count(clause: &str, s: &str) -> Result<u32, FaultError> {
    let n: u32 = s
        .parse()
        .map_err(|_| FaultError::new(clause, format!("\"{s}\" is not a count")))?;
    if n == 0 {
        return Err(FaultError::new(clause, "count must be positive"));
    }
    Ok(n)
}

/// `N@TIME[:DUR]`
fn parse_hotplug(v: &str) -> Result<HotplugFault, FaultError> {
    let (count, when) = v
        .split_once('@')
        .ok_or_else(|| FaultError::new(v, "expected N@TIME[:DUR]"))?;
    let count = parse_count(v, count)?;
    let (at, dur) = match when.split_once(':') {
        Some((a, d)) => (parse_dur(v, a)?, Some(parse_dur(v, d)?)),
        None => (parse_dur(v, when)?, None),
    };
    if let Some(d) = dur {
        if d == 0 {
            return Err(FaultError::new(v, "offline window must be positive"));
        }
    }
    Ok(HotplugFault {
        count,
        at_ns: at,
        dur_ns: dur,
    })
}

/// `sK:F[@TIME[:DUR]]` joined by `+`
fn parse_throttle(v: &str) -> Result<Vec<ThrottleFault>, FaultError> {
    let mut out: Vec<ThrottleFault> = Vec::new();
    for clause in v.split('+') {
        let clause = clause.trim();
        let (target, rest) = clause
            .split_once(':')
            .ok_or_else(|| FaultError::new(clause, "expected sK:F[@TIME[:DUR]]"))?;
        let socket: usize = target
            .strip_prefix('s')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| FaultError::new(clause, format!("\"{target}\" is not a socket (sK)")))?;
        let (factor_s, when) = match rest.split_once('@') {
            Some((f, w)) => (f, Some(w)),
            None => (rest, None),
        };
        let factor: f64 = factor_s
            .parse()
            .map_err(|_| FaultError::new(clause, format!("\"{factor_s}\" is not a factor")))?;
        if !(factor > 0.0 && factor <= 1.0) {
            return Err(FaultError::new(clause, "factor must be in (0, 1]"));
        }
        let (at, dur) = match when {
            None => (0, None),
            Some(w) => match w.split_once(':') {
                Some((a, d)) => (parse_dur(clause, a)?, Some(parse_dur(clause, d)?)),
                None => (parse_dur(clause, w)?, None),
            },
        };
        if let Some(d) = dur {
            if d == 0 {
                return Err(FaultError::new(clause, "throttle window must be positive"));
            }
        }
        if out.iter().any(|t| t.socket == socket) {
            return Err(FaultError::new(clause, "duplicate socket"));
        }
        out.push(ThrottleFault {
            socket,
            factor,
            at_ns: at,
            dur_ns: dur,
        });
    }
    Ok(out)
}

/// `N[@TIME[:DUR]]`
fn parse_stragglers(v: &str) -> Result<StragglerFault, FaultError> {
    let (count, when) = match v.split_once('@') {
        Some((n, w)) => (n, Some(w)),
        None => (v, None),
    };
    let count = parse_count(v, count)?;
    let (at, dur) = match when {
        None => (0, DEFAULT_STRAGGLER_DUR_NS),
        Some(w) => match w.split_once(':') {
            Some((a, d)) => (parse_dur(v, a)?, parse_dur(v, d)?),
            None => (parse_dur(v, w)?, DEFAULT_STRAGGLER_DUR_NS),
        },
    };
    if dur == 0 {
        return Err(FaultError::new(v, "straggler duration must be positive"));
    }
    Ok(StragglerFault {
        count,
        at_ns: at,
        dur_ns: dur,
    })
}

/// Parses a duration with a mandatory `ns`/`us`/`ms`/`s` unit suffix.
fn parse_dur(clause: &str, s: &str) -> Result<u64, FaultError> {
    let s = s.trim();
    let bad = || FaultError::new(clause, format!("\"{s}\" is not a duration (e.g. 50ms, 2s)"));
    let (digits, unit) = s
        .find(|c: char| !c.is_ascii_digit())
        .map(|i| s.split_at(i))
        .ok_or_else(bad)?;
    let n: u64 = digits.parse().map_err(|_| bad())?;
    let scale = match unit {
        "ns" => 1,
        "us" => MICROSEC,
        "ms" => MILLISEC,
        "s" => SEC,
        _ => return Err(bad()),
    };
    n.checked_mul(scale).ok_or_else(bad)
}

/// Renders a nanosecond duration in the largest exact unit.
fn fmt_dur(ns: u64) -> String {
    if ns == 0 {
        return "0ns".to_string();
    }
    for (scale, unit) in [(SEC, "s"), (MILLISEC, "ms"), (MICROSEC, "us")] {
        if ns.is_multiple_of(scale) {
            return format!("{}{unit}", ns / scale);
        }
    }
    format!("{ns}ns")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        for spec in ["", "faults", "  "] {
            let p = FaultPlan::parse(spec).unwrap();
            assert!(p.is_empty(), "{spec:?}");
            assert_eq!(p.canonical(), "");
            assert_eq!(p.canonical_spec(), "");
        }
    }

    #[test]
    fn issue_example_parses() {
        let p = FaultPlan::parse("faults:hotplug=2@50ms,throttle=s0:0.8").unwrap();
        let h = p.hotplug.as_ref().unwrap();
        assert_eq!((h.count, h.at_ns, h.dur_ns), (2, 50 * MILLISEC, None));
        assert_eq!(p.throttle.len(), 1);
        assert_eq!(p.throttle[0].socket, 0);
        assert_eq!(p.throttle[0].factor, 0.8);
        assert_eq!(p.throttle[0].at_ns, 0);
        assert_eq!(p.throttle[0].dur_ns, None);
        assert_eq!(p.canonical(), "hotplug=2@50ms,throttle=s0:0.8");
        assert_eq!(p.canonical_spec(), "faults:hotplug=2@50ms,throttle=s0:0.8");
    }

    #[test]
    fn full_grammar_round_trips() {
        let spec = "hotplug=4@100ms:200ms,throttle=s0:0.8@50ms:1s+s1:0.5,\
                    jitter=20us,stragglers=4@10ms:80ms";
        let p = FaultPlan::parse(spec).unwrap();
        let canon = p.canonical();
        assert_eq!(FaultPlan::parse(&canon).unwrap(), p);
        let h = p.hotplug.as_ref().unwrap();
        assert_eq!(h.dur_ns, Some(200 * MILLISEC));
        assert_eq!(p.throttle[0].dur_ns, Some(SEC));
        assert_eq!(p.throttle[1].socket, 1);
        assert_eq!(p.jitter_ns, 20 * MICROSEC);
        let s = p.stragglers.as_ref().unwrap();
        assert_eq!(
            (s.count, s.at_ns, s.dur_ns),
            (4, 10 * MILLISEC, 80 * MILLISEC)
        );
    }

    #[test]
    fn canonical_sorts_throttle_sockets_and_defaults_vanish() {
        let p = FaultPlan::parse("throttle=s2:0.9+s0:0.5@0ns").unwrap();
        assert_eq!(p.canonical(), "throttle=s0:0.5,s2:0.9".replace(',', "+"));
        let s = FaultPlan::parse("stragglers=3@0ns:50ms").unwrap();
        assert_eq!(s.canonical(), "stragglers=3");
    }

    #[test]
    fn durations_render_largest_exact_unit() {
        assert_eq!(fmt_dur(0), "0ns");
        assert_eq!(fmt_dur(1_500), "1500ns");
        assert_eq!(fmt_dur(2_000), "2us");
        assert_eq!(fmt_dur(50 * MILLISEC), "50ms");
        assert_eq!(fmt_dur(3 * SEC), "3s");
        assert_eq!(parse_dur("t", "3s").unwrap(), 3 * SEC);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for spec in [
            "hotplug=2",                    // missing onset
            "hotplug=0@50ms",               // zero count
            "hotplug=2@50",                 // missing unit
            "hotplug=2@50ms:0ms",           // zero window
            "throttle=s0:1.5",              // factor out of range
            "throttle=s0:0",                // factor out of range
            "throttle=0:0.8",               // missing socket prefix
            "throttle=s0:0.8+s0:.9",        // duplicate socket
            "jitter=0ns",                   // zero jitter
            "stragglers=2@1ms:0ms",         // zero duration
            "blorp=1",                      // unknown key
            "hotplug",                      // not key=value
            "hotplug=2@50ms,hotplug=1@9ms", // duplicate clause
        ] {
            assert!(FaultPlan::parse(spec).is_err(), "{spec:?} should fail");
        }
    }

    #[test]
    fn head_is_case_insensitive_and_optional() {
        let a = FaultPlan::parse("FAULTS:jitter=1ms").unwrap();
        let b = FaultPlan::parse("jitter=1ms").unwrap();
        assert_eq!(a, b);
    }
}
