//! Materializing a [`FaultPlan`] into concrete, time-sorted actions.

use nest_simcore::rng::{hash_str, mix64};
use nest_simcore::{CoreId, SimRng, SocketId, Time};
use nest_topology::Topology;

use crate::plan::FaultPlan;

/// One concrete fault effect at a point in time.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Take a core offline, migrating any work away from it.
    CoreOffline(CoreId),
    /// Bring a previously offlined core back online.
    CoreOnline(CoreId),
    /// Start capping a socket's turbo ceilings at `factor`.
    ThrottleStart {
        /// Socket to throttle.
        socket: SocketId,
        /// Cap factor in `(0, 1]`.
        factor: f64,
    },
    /// Lift the throttle on a socket.
    ThrottleEnd {
        /// Socket to restore.
        socket: SocketId,
    },
    /// Spawn `count` background interference tasks.
    SpawnStragglers {
        /// Number of tasks to spawn.
        count: u32,
        /// Lifetime of each task in nanoseconds.
        duration_ns: u64,
    },
}

/// A [`FaultAction`] with its injection time.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedFault {
    /// When the action fires.
    pub at: Time,
    /// What happens.
    pub action: FaultAction,
}

/// A plan expanded against a concrete machine: the exact actions, in
/// time order, that the engine will schedule on its event queue.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    actions: Vec<TimedFault>,
}

impl FaultSchedule {
    /// Expands `plan` for `topo` using `seed` to pick hotplug victims.
    ///
    /// The expansion is a pure function of its inputs. Core selection
    /// draws from a dedicated RNG seeded by `(canonical plan, seed)`,
    /// so it never perturbs the engine's or the workload's streams.
    ///
    /// Two safety rules bound hotplug: core 0 (the boot CPU, and Nest's
    /// reserve-search anchor) is never offlined, and at most half the
    /// machine may be offline at once — a larger requested count is
    /// clamped, mirroring how real hotplug refuses to kill the last CPU.
    pub fn materialize(plan: &FaultPlan, topo: &Topology, seed: u64) -> FaultSchedule {
        let mut actions = Vec::new();
        if plan.is_empty() {
            return FaultSchedule { actions };
        }
        if let Some(h) = &plan.hotplug {
            let n = topo.n_cores();
            let max_off = (n / 2).max(1).min(n - 1);
            let count = (h.count as usize).min(max_off);
            let mut rng = SimRng::new(mix64(hash_str(&plan.canonical()), seed));
            // Partial Fisher-Yates over cores 1..n: the first `count`
            // entries are the victims.
            let mut candidates: Vec<usize> = (1..n).collect();
            for i in 0..count {
                let j = i + rng.uniform_u64(0, (candidates.len() - i - 1) as u64) as usize;
                candidates.swap(i, j);
            }
            let mut victims: Vec<usize> = candidates[..count].to_vec();
            victims.sort_unstable();
            for &c in &victims {
                actions.push(TimedFault {
                    at: Time::from_nanos(h.at_ns),
                    action: FaultAction::CoreOffline(CoreId::from_index(c)),
                });
            }
            if let Some(d) = h.dur_ns {
                for &c in &victims {
                    actions.push(TimedFault {
                        at: Time::from_nanos(h.at_ns + d),
                        action: FaultAction::CoreOnline(CoreId::from_index(c)),
                    });
                }
            }
        }
        for t in &plan.throttle {
            if t.socket >= topo.n_sockets() {
                // Out-of-range sockets are dropped at materialization:
                // plans are machine-independent strings, and a 4-socket
                // plan may legitimately run on a 2-socket preset.
                continue;
            }
            let socket = SocketId::from_index(t.socket);
            actions.push(TimedFault {
                at: Time::from_nanos(t.at_ns),
                action: FaultAction::ThrottleStart {
                    socket,
                    factor: t.factor,
                },
            });
            if let Some(d) = t.dur_ns {
                actions.push(TimedFault {
                    at: Time::from_nanos(t.at_ns + d),
                    action: FaultAction::ThrottleEnd { socket },
                });
            }
        }
        if let Some(s) = &plan.stragglers {
            actions.push(TimedFault {
                at: Time::from_nanos(s.at_ns),
                action: FaultAction::SpawnStragglers {
                    count: s.count,
                    duration_ns: s.dur_ns,
                },
            });
        }
        // Stable by construction: ties keep the push order above
        // (offlines before onlines before throttles before stragglers).
        actions.sort_by_key(|a| a.at);
        FaultSchedule { actions }
    }

    /// The actions in time order.
    pub fn actions(&self) -> &[TimedFault] {
        &self.actions
    }

    /// Returns `true` if no actions were materialized.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_topology::presets;

    fn topo() -> Topology {
        Topology::new(presets::xeon_5218())
    }

    #[test]
    fn empty_plan_materializes_to_nothing() {
        let s = FaultSchedule::materialize(&FaultPlan::default(), &topo(), 42);
        assert!(s.is_empty());
    }

    #[test]
    fn materialization_is_deterministic() {
        let plan = FaultPlan::parse("hotplug=4@50ms:100ms,throttle=s1:0.7@1ms").unwrap();
        let a = FaultSchedule::materialize(&plan, &topo(), 7);
        let b = FaultSchedule::materialize(&plan, &topo(), 7);
        assert_eq!(a.actions(), b.actions());
        let c = FaultSchedule::materialize(&plan, &topo(), 8);
        assert_ne!(a.actions(), c.actions(), "seed must matter");
    }

    #[test]
    fn hotplug_never_kills_core_zero_and_onlines_match() {
        let plan = FaultPlan::parse("hotplug=8@10ms:5ms").unwrap();
        for seed in 0..32 {
            let s = FaultSchedule::materialize(&plan, &topo(), seed);
            let mut off = Vec::new();
            let mut on = Vec::new();
            for tf in s.actions() {
                match tf.action {
                    FaultAction::CoreOffline(c) => {
                        assert_ne!(c.index(), 0, "core 0 offlined (seed {seed})");
                        assert_eq!(tf.at, Time::from_millis(10));
                        off.push(c);
                    }
                    FaultAction::CoreOnline(c) => {
                        assert_eq!(tf.at, Time::from_millis(15));
                        on.push(c);
                    }
                    _ => panic!("unexpected action"),
                }
            }
            assert_eq!(off.len(), 8);
            assert_eq!(off, on);
            let mut uniq = off.clone();
            uniq.dedup();
            assert_eq!(uniq.len(), off.len(), "victims must be distinct");
        }
    }

    #[test]
    fn hotplug_count_is_clamped_to_half_machine() {
        let plan = FaultPlan::parse("hotplug=1000@1ms").unwrap();
        let t = topo();
        let s = FaultSchedule::materialize(&plan, &t, 1);
        assert_eq!(s.actions().len(), t.n_cores() / 2);
    }

    #[test]
    fn out_of_range_throttle_socket_is_dropped() {
        let plan = FaultPlan::parse("throttle=s7:0.5").unwrap();
        let s = FaultSchedule::materialize(&plan, &topo(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn actions_are_time_sorted() {
        let plan =
            FaultPlan::parse("hotplug=2@50ms,throttle=s0:0.8@1ms:10ms,stragglers=2@5ms").unwrap();
        let s = FaultSchedule::materialize(&plan, &topo(), 3);
        let times: Vec<u64> = s.actions().iter().map(|a| a.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }
}
