//! Property-based tests for the simulation primitives.

// Property-based tests need the external `proptest` crate; the offline
// default build compiles this file to an empty test binary. Enable with
// `--features proptest` after adding proptest to [dev-dependencies].
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use nest_simcore::{EventQueue, Freq, SimRng, Time};

proptest! {
    /// The event queue pops in nondecreasing time order and, at equal
    /// times, in insertion order — verified against a stable sort.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..1000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_nanos(t), i);
        }
        let mut expect: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expect.sort_by_key(|&(t, _)| t); // stable: preserves insertion order
        let got: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|(t, i)| (t.as_nanos(), i))).collect();
        prop_assert_eq!(got, expect);
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn event_queue_cancellation(
        times in prop::collection::vec(0u64..1000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(Time::from_nanos(t), i))
            .collect();
        let mut kept = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*key);
            } else {
                kept.push(i);
            }
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, i)| i)).collect();
        prop_assert_eq!(got.len(), kept.len());
        for i in kept {
            prop_assert!(got.contains(&i));
        }
    }

    /// Time arithmetic: (t + d) - t == d; align_down is within one
    /// interval and divisible by it.
    #[test]
    fn time_arithmetic(t in 0u64..u64::MAX / 2, d in 0u64..u64::MAX / 4, interval in 1u64..1_000_000) {
        let a = Time::from_nanos(t);
        prop_assert_eq!((a + d) - a, d);
        let aligned = a.align_down(interval);
        prop_assert!(aligned <= a);
        prop_assert!(a - aligned < interval);
        prop_assert_eq!(aligned.as_nanos() % interval, 0);
    }

    /// Frequency/cycle conversion: executing for the computed duration
    /// always yields at least the requested cycles, and never more than
    /// one extra tick's worth.
    #[test]
    fn freq_duration_round_trip(khz in 1u64..10_000_000, cycles in 0u64..u64::MAX / 2_000_000) {
        let f = Freq::from_khz(khz);
        let ns = f.nanos_for_cycles(cycles);
        prop_assert!(f.cycles_in_nanos(ns) >= cycles);
        if cycles > 0 {
            // One nanosecond less would not be enough.
            prop_assert!(f.cycles_in_nanos(ns.saturating_sub(1)) <= cycles);
        }
    }

    /// Forked RNG streams with different labels differ, same labels agree.
    #[test]
    fn rng_fork_determinism(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        let mut fa1 = r1.fork(a);
        let mut fa2 = r2.fork(a);
        prop_assert_eq!(fa1.next_u64(), fa2.next_u64());
        if a != b {
            let mut r3 = SimRng::new(seed);
            let mut fb = r3.fork(b);
            let mut r4 = SimRng::new(seed);
            let mut fa = r4.fork(a);
            prop_assert_ne!(fa.next_u64(), fb.next_u64());
        }
    }

    /// `jitter` stays within the advertised bounds for valid inputs.
    #[test]
    fn rng_jitter_bounds(seed in any::<u64>(), base in 0u64..1_000_000_000, j in 0.0f64..1.0) {
        let mut r = SimRng::new(seed);
        let v = r.jitter(base, j);
        let lo = ((base as f64) * (1.0 - j)).floor() as u64;
        let hi = ((base as f64) * (1.0 + j)).ceil() as u64;
        prop_assert!(v >= lo && v <= hi, "{v} outside [{lo}, {hi}]");
    }
}
