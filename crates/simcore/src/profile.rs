//! A lightweight self-profiler for the simulator's hot paths.
//!
//! The profiler answers "where do the cycles go?" for a simulation run:
//! per-subsystem invocation counts and wall-clock time, accumulated in
//! process-wide atomic counters so that every engine on every harness
//! worker thread feeds the same totals. The harness snapshots the counters
//! around a figure run and emits the delta into the figure's
//! `.telemetry.json` sidecar and into `results/profile.json`.
//!
//! Two cost tiers keep the hot path honest:
//!
//! * **Always on**: the engine counts dispatched events in a plain local
//!   integer and flushes it once per run ([`add_events`]). This feeds the
//!   events/sec throughput number at the cost of one atomic add per
//!   *simulation*, not per event.
//! * **Opt-in** (`NEST_PROFILE=1`): subsystem [`Span`]s take two
//!   `Instant::now()` readings per instrumented call. When the profiler is
//!   disabled every instrumentation site reduces to one relaxed atomic
//!   load and a predictable branch.
//!
//! Wall-clock readings are host time and therefore nondeterministic; they
//! only ever reach telemetry sidecars, never the deterministic
//! `results/<figure>.json` artifacts (see `PROFILING.md`).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// The instrumented subsystems, in report order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Subsystem {
    /// Engine event dispatch (every event popped from the queue).
    EventDispatch = 0,
    /// CFS fork placement: socket descent plus idlest-core scan.
    CfsFork = 1,
    /// CFS wakeup placement: wake-affine check plus die idle search.
    CfsWakeup = 2,
    /// Nest primary-nest scan (including lazy compaction).
    NestPrimaryScan = 3,
    /// Nest reserve-nest scan.
    NestReserveScan = 4,
    /// PELT decay updates (count only; the update itself is ~one `powf`).
    PeltDecay = 5,
    /// Load balancing: newidle and periodic pull-source searches.
    LoadBalance = 6,
    /// Frequency model advance (`schedutil` sampling, ramp dynamics).
    FreqModel = 7,
    /// Socket-statistics cache refreshes (CFS fork descent input).
    SocketStats = 8,
    /// Instantaneous-power recomputation in the energy integrator.
    FreqPower = 9,
    /// The per-core scheduler-tick loop (clock, preempt, pull checks).
    TickLoop = 10,
    /// Trace-event fan-out to metric probes.
    TraceProbes = 11,
}

/// Number of [`Subsystem`] variants.
pub const N_SUBSYSTEMS: usize = 12;

/// Subsystem names as they appear in telemetry JSON, in enum order.
pub const SUBSYSTEM_NAMES: [&str; N_SUBSYSTEMS] = [
    "event_dispatch",
    "cfs_fork",
    "cfs_wakeup",
    "nest_primary_scan",
    "nest_reserve_scan",
    "pelt_decay",
    "load_balance",
    "freq_model",
    "socket_stats",
    "freq_power",
    "tick_loop",
    "trace_probes",
];

// 0 = uninitialized, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static CALLS: [AtomicU64; N_SUBSYSTEMS] = [ZERO; N_SUBSYSTEMS];
static NANOS: [AtomicU64; N_SUBSYSTEMS] = [ZERO; N_SUBSYSTEMS];
/// Total events dispatched across all engines, regardless of `enabled()`.
static EVENTS: AtomicU64 = AtomicU64::new(0);

#[cold]
fn init_from_env() -> bool {
    let on = matches!(
        std::env::var("NEST_PROFILE").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    );
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// `true` if subsystem profiling is on (`NEST_PROFILE=1`).
///
/// The first call reads the environment; subsequent calls are a relaxed
/// atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == 2,
    }
}

/// Forces profiling on or off, overriding `NEST_PROFILE` (tests use this).
pub fn force_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Adds one invocation to `sub` when profiling is enabled. For hot sites
/// whose per-call time is too small to measure (e.g. one PELT decay).
#[inline]
pub fn count(sub: Subsystem) {
    if enabled() {
        CALLS[sub as usize].fetch_add(1, Ordering::Relaxed);
    }
}

/// Adds `calls` invocations and `nanos` of wall time to `sub`.
pub fn add(sub: Subsystem, calls: u64, nanos: u64) {
    CALLS[sub as usize].fetch_add(calls, Ordering::Relaxed);
    NANOS[sub as usize].fetch_add(nanos, Ordering::Relaxed);
}

/// Records events dispatched by an engine run (always counted; feeds
/// events/sec in telemetry).
pub fn add_events(n: u64) {
    EVENTS.fetch_add(n, Ordering::Relaxed);
}

/// Total events dispatched process-wide since start (or [`reset`]).
pub fn events_total() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

/// A RAII timer for one subsystem invocation.
///
/// When profiling is disabled, constructing and dropping a span is one
/// relaxed load and a branch; when enabled it records one call and the
/// elapsed wall time.
pub struct Span {
    sub: Subsystem,
    start: Option<Instant>,
}

/// Starts timing one invocation of `sub` (no-op when disabled).
#[inline]
pub fn span(sub: Subsystem) -> Span {
    Span {
        sub,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            add(self.sub, 1, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Accumulated totals for one subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubsystemTotals {
    /// Invocations recorded.
    pub calls: u64,
    /// Wall-clock nanoseconds recorded (0 for count-only sites).
    pub nanos: u64,
}

/// A point-in-time copy of all profiler counters.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Per-subsystem totals, indexed in [`Subsystem`] enum order.
    pub subsystems: [SubsystemTotals; N_SUBSYSTEMS],
    /// Events dispatched (always counted).
    pub events: u64,
}

impl Snapshot {
    /// The counters accumulated since `earlier` (saturating).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot {
            events: self.events.saturating_sub(earlier.events),
            ..Snapshot::default()
        };
        for i in 0..N_SUBSYSTEMS {
            out.subsystems[i] = SubsystemTotals {
                calls: self.subsystems[i]
                    .calls
                    .saturating_sub(earlier.subsystems[i].calls),
                nanos: self.subsystems[i]
                    .nanos
                    .saturating_sub(earlier.subsystems[i].nanos),
            };
        }
        out
    }

    /// Iterates `(name, totals)` in report order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, SubsystemTotals)> + '_ {
        SUBSYSTEM_NAMES
            .iter()
            .zip(self.subsystems.iter())
            .map(|(&n, &t)| (n, t))
    }
}

/// Reads all counters.
pub fn snapshot() -> Snapshot {
    let mut s = Snapshot {
        events: events_total(),
        ..Snapshot::default()
    };
    for i in 0..N_SUBSYSTEMS {
        s.subsystems[i] = SubsystemTotals {
            calls: CALLS[i].load(Ordering::Relaxed),
            nanos: NANOS[i].load(Ordering::Relaxed),
        };
    }
    s
}

/// Zeroes all counters (tests; the harness uses snapshot deltas instead).
pub fn reset() {
    for i in 0..N_SUBSYSTEMS {
        CALLS[i].store(0, Ordering::Relaxed);
        NANOS[i].store(0, Ordering::Relaxed);
    }
    EVENTS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process-global, so the tests below only ever add
    // and compare deltas — they stay correct when run concurrently.

    #[test]
    fn events_accumulate() {
        let before = snapshot();
        add_events(120);
        add_events(3);
        let delta = snapshot().since(&before);
        assert!(delta.events >= 123);
    }

    #[test]
    fn force_toggle_controls_recording() {
        // One test owns the global flag to avoid races between parallel
        // tests flipping it.
        force_enabled(true);
        let before = snapshot();
        {
            let _s = span(Subsystem::CfsFork);
            std::hint::black_box(17u64);
        }
        count(Subsystem::PeltDecay);
        let delta = snapshot().since(&before);
        assert!(delta.subsystems[Subsystem::CfsFork as usize].calls >= 1);
        assert!(delta.subsystems[Subsystem::PeltDecay as usize].calls >= 1);

        force_enabled(false);
        let before = snapshot();
        {
            let _s = span(Subsystem::SocketStats);
        }
        count(Subsystem::SocketStats);
        let delta = snapshot().since(&before);
        assert_eq!(delta.subsystems[Subsystem::SocketStats as usize].calls, 0);
    }

    #[test]
    fn names_cover_every_subsystem() {
        assert_eq!(SUBSYSTEM_NAMES.len(), N_SUBSYSTEMS);
        let s = snapshot();
        assert_eq!(s.entries().count(), N_SUBSYSTEMS);
    }
}
