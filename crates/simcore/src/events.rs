//! The simulation event queue.
//!
//! [`EventQueue`] is a priority queue of `(Time, payload)` pairs with two
//! properties the simulator depends on:
//!
//! * **Stable ordering** — events at equal times pop in insertion order, so
//!   the simulation is deterministic regardless of heap internals.
//! * **Cancellation** — scheduling returns an [`EventKey`]; cancelling a
//!   key is O(1) (lazy deletion) and is how the engine invalidates, e.g., a
//!   task-completion event when the core's frequency changes mid-segment.

use std::cmp::Ordering;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::Time;

/// A handle to a scheduled event, usable to cancel it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

#[derive(PartialEq, Eq)]
struct Entry {
    at: Time,
    seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic, cancellable discrete-event queue.
///
/// # Examples
///
/// ```
/// use nest_simcore::events::EventQueue;
/// use nest_simcore::time::Time;
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_nanos(10), "b");
/// q.schedule(Time::from_nanos(5), "a");
/// let key = q.schedule(Time::from_nanos(7), "cancelled");
/// q.cancel(key);
/// assert_eq!(q.pop(), Some((Time::from_nanos(5), "a")));
/// assert_eq!(q.pop(), Some((Time::from_nanos(10), "b")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    // Payloads and liveness in a ring indexed by `seq - base_seq`:
    // scheduling appends, pop/cancel clears the slot, and the cleared
    // prefix is reclaimed by advancing `base_seq`. Sequence numbers grow
    // monotonically, so the ring only ever spans the window of in-flight
    // events, and the dispatch hot path pays one bounds-checked index
    // instead of a hash probe per event.
    slots: VecDeque<Option<E>>,
    base_seq: u64,
    live: usize,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: VecDeque::new(),
            base_seq: 0,
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at` and returns a cancellation
    /// key.
    pub fn schedule(&mut self, at: Time, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq }));
        self.slots.push_back(Some(event));
        self.live += 1;
        EventKey(seq)
    }

    /// The ring position of `seq`, if it is inside the retained window.
    fn slot_index(&self, seq: u64) -> Option<usize> {
        seq.checked_sub(self.base_seq)
            .map(|i| i as usize)
            .filter(|&i| i < self.slots.len())
    }

    /// Clears the slot for `seq`, returning its payload if it was live,
    /// and reclaims any cleared prefix of the ring.
    fn take(&mut self, seq: u64) -> Option<E> {
        let i = self.slot_index(seq)?;
        let event = self.slots[i].take();
        if event.is_some() {
            self.live -= 1;
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base_seq += 1;
            }
        }
        event
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns the payload if the event was still pending, `None` if it had
    /// already fired or been cancelled. Cancelling twice is harmless.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        self.take(key.0)
    }

    /// Returns `true` if the event behind `key` is still pending.
    pub fn is_pending(&self, key: EventKey) -> bool {
        self.slot_index(key.0)
            .is_some_and(|i| self.slots[i].is_some())
    }

    /// Removes and returns the earliest pending event.
    ///
    /// Events at the same time pop in the order they were scheduled.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if let Some(event) = self.take(entry.seq) {
                return Some((entry.at, event));
            }
            // Lazily dropped: the slot was cancelled.
        }
        None
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.is_pending(EventKey(entry.seq)) {
                return Some(entry.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Returns every pending event in schedule order: ascending fire
    /// time, ties broken by scheduling order (the order [`pop`] would
    /// deliver them).
    ///
    /// Used by snapshots: re-scheduling the returned sequence into a
    /// fresh queue preserves the relative FIFO order of same-time
    /// events, so a restored queue pops bit-identically to the
    /// original — even though the absolute sequence numbers differ.
    ///
    /// [`pop`]: EventQueue::pop
    pub fn pending_in_schedule_order(&self) -> Vec<(Time, &E)> {
        let mut live: Vec<(Time, u64, &E)> = self
            .heap
            .iter()
            .filter_map(|Reverse(entry)| {
                let i = self.slot_index(entry.seq)?;
                let event = self.slots[i].as_ref()?;
                Some((entry.at, entry.seq, event))
            })
            .collect();
        live.sort_by_key(|&(at, seq, _)| (at, seq));
        live.into_iter().map(|(at, _, e)| (at, e)).collect()
    }

    /// Returns the number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_nanos(30), 3);
        q.schedule(Time::from_nanos(10), 1);
        q.schedule(Time::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k = q.schedule(Time::from_nanos(1), "x");
        assert!(q.is_pending(k));
        assert_eq!(q.cancel(k), Some("x"));
        assert!(!q.is_pending(k));
        assert_eq!(q.cancel(k), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_after_fire_means_not_pending() {
        let mut q = EventQueue::new();
        let k = q.schedule(Time::from_nanos(1), ());
        q.pop();
        assert!(!q.is_pending(k));
        assert_eq!(q.cancel(k), None);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let k = q.schedule(Time::from_nanos(1), 1);
        q.schedule(Time::from_nanos(2), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(2)));
    }

    #[test]
    fn ring_reclaims_cleared_prefix() {
        let mut q = EventQueue::new();
        // Steady state: schedule/pop interleaved with cancels. The ring
        // must keep answering correctly as base_seq advances past both
        // popped and cancelled slots.
        let mut keys = Vec::new();
        for round in 0..50u64 {
            for j in 0..4 {
                keys.push(q.schedule(Time::from_nanos(round * 10 + j), round * 4 + j));
            }
            if round % 3 == 0 {
                q.cancel(keys[keys.len() - 2]);
            }
            let _ = q.pop();
        }
        // Prefix reclamation kept the ring to the in-flight window (200
        // events were scheduled in total; cancelled holes ahead of the
        // pop frontier may linger until it passes them).
        assert!(q.base_seq > 0, "prefix was never reclaimed");
        assert!(q.slots.len() < 200, "ring never shrank");
        let mut last = Time::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
        assert!(q.is_empty());
        // Stale keys from long-gone events never read as pending.
        assert!(keys.iter().all(|&k| !q.is_pending(k)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(Time::from_nanos(1), 1);
        q.schedule(Time::from_nanos(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
