//! Tracing probes.
//!
//! The engine emits a stream of [`TraceEvent`]s describing scheduling
//! decisions, core activity, and frequency changes — the simulator's
//! equivalent of the paper's `trace-cmd` + frequency traces. Metrics
//! collectors implement [`Probe`] and subscribe to the stream; the engine
//! itself never aggregates anything, keeping measurement strictly separate
//! from mechanism.

use crate::ids::{CoreId, TaskId};
use crate::time::Time;
use crate::units::Freq;

/// Which placement path chose a core for a task.
///
/// `Nest*` variants only occur under the Nest policy; `SmoveParent` only
/// under Smove. Tests use these to verify which mechanism fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PlacementPath {
    /// CFS fork-time idlest-group/idlest-core descent.
    CfsFork,
    /// CFS wakeup-time die-local idle search.
    CfsWakeup,
    /// An idle core found in Nest's primary nest.
    NestPrimary,
    /// An idle core found in Nest's reserve nest.
    NestReserve,
    /// Nest fell back to CFS (the chosen core may join the reserve nest).
    NestFallback,
    /// Smove placed the task on its parent's (waker's) core.
    SmoveParent,
    /// The task was migrated by load balancing.
    LoadBalance,
    /// The Smove timer expired and moved the task to CFS's original choice.
    SmoveTimer,
}

impl PlacementPath {
    /// Every placement path, in a stable display order. Dense per-path
    /// counters index by position in this array ([`PlacementPath::index`]).
    pub const ALL: [PlacementPath; 8] = [
        PlacementPath::CfsFork,
        PlacementPath::CfsWakeup,
        PlacementPath::NestPrimary,
        PlacementPath::NestReserve,
        PlacementPath::NestFallback,
        PlacementPath::SmoveParent,
        PlacementPath::LoadBalance,
        PlacementPath::SmoveTimer,
    ];

    /// The dense index of this path within [`PlacementPath::ALL`].
    pub fn index(self) -> usize {
        PlacementPath::ALL
            .iter()
            .position(|p| *p == self)
            .expect("ALL lists every variant")
    }
}

/// Why a task stopped running on a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum StopReason {
    /// The task blocked (sleep, wait, barrier, empty channel).
    Block,
    /// The task was preempted by another runnable task.
    Preempt,
    /// The task yielded voluntarily.
    Yield,
    /// The task exited.
    Exit,
}

/// One event in the simulation trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A task was created (initial task or fork).
    TaskCreated {
        /// The new task.
        task: TaskId,
        /// The task's label, for trace readability.
        label: String,
        /// The forking task, if any.
        parent: Option<TaskId>,
    },
    /// A task exited.
    TaskExited {
        /// The exiting task.
        task: TaskId,
    },
    /// A placement decision: `task` will be enqueued on `core`.
    Placed {
        /// The placed task.
        task: TaskId,
        /// The chosen core.
        core: CoreId,
        /// Which mechanism chose the core.
        path: PlacementPath,
    },
    /// A task started running on a core.
    RunStart {
        /// The task now running.
        task: TaskId,
        /// The core it runs on.
        core: CoreId,
    },
    /// A task stopped running on a core.
    RunStop {
        /// The task that stopped.
        task: TaskId,
        /// The core it ran on.
        core: CoreId,
        /// Why it stopped.
        reason: StopReason,
    },
    /// A task became runnable after blocking (before placement).
    Woken {
        /// The woken task.
        task: TaskId,
    },
    /// The number of runnable tasks (running + queued) changed.
    RunnableCount {
        /// The new count.
        count: u32,
    },
    /// A core's frequency changed.
    FreqChange {
        /// The core.
        core: CoreId,
        /// Its new frequency.
        freq: Freq,
    },
    /// A core's idle loop began spinning to keep the core warm (Nest).
    SpinStart {
        /// The spinning core.
        core: CoreId,
    },
    /// A core's idle spin ended (timeout, placement, or busy hyperthread).
    SpinEnd {
        /// The core that stopped spinning.
        core: CoreId,
    },
    /// A core entered the primary nest (reserve promotion or impatient
    /// growth; Nest policy only).
    NestExpand {
        /// The promoted core.
        core: CoreId,
        /// Primary-nest size after the transition.
        primary: u32,
        /// Reserve-nest size after the transition.
        reserve: u32,
    },
    /// A core left the primary nest (demoted to the reserve, or discarded
    /// when the reserve is full or disabled; Nest policy only).
    NestShrink {
        /// The demoted core.
        core: CoreId,
        /// Primary-nest size after the transition.
        primary: u32,
        /// Reserve-nest size after the transition.
        reserve: u32,
    },
    /// A stale primary core was demoted by lazy compaction (§3.1): a task
    /// tried to use it after `P_remove` idle ticks (Nest policy only).
    NestCompaction {
        /// The compacted core.
        core: CoreId,
        /// Primary-nest size after the transition.
        primary: u32,
        /// Reserve-nest size after the transition.
        reserve: u32,
    },
    /// A core was taken offline by fault injection. Emitted after the
    /// policy has shed the core from its structures and before any
    /// displaced work is re-placed; from this point no new activity
    /// (placement, run start, spin) may target the core.
    CoreOffline {
        /// The offlined core.
        core: CoreId,
    },
    /// A previously offlined core came back online and may be used again.
    CoreOnline {
        /// The onlined core.
        core: CoreId,
    },
    /// Fault injection changed a socket's thermal-throttle factor.
    SocketThrottle {
        /// The throttled socket's index.
        socket: usize,
        /// The new cap factor in `(0, 1]`; `1.0` means the throttle was
        /// lifted.
        factor: f64,
    },
}

/// A subscriber to the simulation trace.
pub trait Probe {
    /// Called for every trace event, in simulation order.
    fn on_event(&mut self, now: Time, event: &TraceEvent);

    /// Called once when the simulation finishes, with the final time.
    fn on_finish(&mut self, _now: Time) {}

    /// Serializes the probe's accumulated state for a snapshot, as a
    /// `(kind, state)` pair, or `None` if this probe cannot be
    /// checkpointed.
    ///
    /// The engine refuses to snapshot while a non-checkpointable probe
    /// is attached (failing loudly beats silently dropping half the
    /// metrics). `kind` names the probe type; on restore the caller
    /// rebuilds the probe rig in the original attachment order and
    /// feeds each saved state back via [`Probe::snap_restore`].
    fn snap(&self) -> Option<(&'static str, crate::json::Json)> {
        None
    }

    /// Restores state captured by [`Probe::snap`] into a freshly
    /// constructed probe of the same kind.
    ///
    /// The default rejects any state, matching the default `snap` of
    /// `None`.
    fn snap_restore(&mut self, _state: &crate::json::Json) -> Result<(), String> {
        Err("probe does not support snapshot restore".to_string())
    }
}

/// A probe that records every event verbatim; useful in tests, which
/// match the recorded [`TraceEvent`]s structurally.
#[derive(Default)]
pub struct RecordingProbe {
    /// The recorded `(time, event)` pairs.
    pub events: Vec<(Time, TraceEvent)>,
}

impl Probe for RecordingProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        self.events.push((now, event.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_probe_captures_events() {
        let mut p = RecordingProbe::default();
        p.on_event(Time::from_nanos(5), &TraceEvent::Woken { task: TaskId(3) });
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].0, Time::from_nanos(5));
        assert_eq!(p.events[0].1, TraceEvent::Woken { task: TaskId(3) });
    }

    #[test]
    fn placement_paths_are_distinct() {
        for (i, a) in PlacementPath::ALL.iter().enumerate() {
            for (j, b) in PlacementPath::ALL.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }

    #[test]
    fn placement_path_index_is_dense() {
        for (i, p) in PlacementPath::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
