//! Tracing probes.
//!
//! The engine emits a stream of [`TraceEvent`]s describing scheduling
//! decisions, core activity, and frequency changes — the simulator's
//! equivalent of the paper's `trace-cmd` + frequency traces. Metrics
//! collectors implement [`Probe`] and subscribe to the stream; the engine
//! itself never aggregates anything, keeping measurement strictly separate
//! from mechanism.

use crate::ids::{CoreId, TaskId};
use crate::time::Time;
use crate::units::Freq;

/// Which placement path chose a core for a task.
///
/// `Nest*` variants only occur under the Nest policy; `SmoveParent` only
/// under Smove. Tests use these to verify which mechanism fired.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PlacementPath {
    /// CFS fork-time idlest-group/idlest-core descent.
    CfsFork,
    /// CFS wakeup-time die-local idle search.
    CfsWakeup,
    /// An idle core found in Nest's primary nest.
    NestPrimary,
    /// An idle core found in Nest's reserve nest.
    NestReserve,
    /// Nest fell back to CFS (the chosen core may join the reserve nest).
    NestFallback,
    /// Smove placed the task on its parent's (waker's) core.
    SmoveParent,
    /// The task was migrated by load balancing.
    LoadBalance,
    /// The Smove timer expired and moved the task to CFS's original choice.
    SmoveTimer,
}

/// Why a task stopped running on a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum StopReason {
    /// The task blocked (sleep, wait, barrier, empty channel).
    Block,
    /// The task was preempted by another runnable task.
    Preempt,
    /// The task yielded voluntarily.
    Yield,
    /// The task exited.
    Exit,
}

/// One event in the simulation trace.
#[derive(Debug)]
pub enum TraceEvent {
    /// A task was created (initial task or fork).
    TaskCreated {
        /// The new task.
        task: TaskId,
        /// The task's label, for trace readability.
        label: String,
        /// The forking task, if any.
        parent: Option<TaskId>,
    },
    /// A task exited.
    TaskExited {
        /// The exiting task.
        task: TaskId,
    },
    /// A placement decision: `task` will be enqueued on `core`.
    Placed {
        /// The placed task.
        task: TaskId,
        /// The chosen core.
        core: CoreId,
        /// Which mechanism chose the core.
        path: PlacementPath,
    },
    /// A task started running on a core.
    RunStart {
        /// The task now running.
        task: TaskId,
        /// The core it runs on.
        core: CoreId,
    },
    /// A task stopped running on a core.
    RunStop {
        /// The task that stopped.
        task: TaskId,
        /// The core it ran on.
        core: CoreId,
        /// Why it stopped.
        reason: StopReason,
    },
    /// A task became runnable after blocking (before placement).
    Woken {
        /// The woken task.
        task: TaskId,
    },
    /// The number of runnable tasks (running + queued) changed.
    RunnableCount {
        /// The new count.
        count: u32,
    },
    /// A core's frequency changed.
    FreqChange {
        /// The core.
        core: CoreId,
        /// Its new frequency.
        freq: Freq,
    },
    /// A core's idle loop began spinning to keep the core warm (Nest).
    SpinStart {
        /// The spinning core.
        core: CoreId,
    },
    /// A core's idle spin ended (timeout, placement, or busy hyperthread).
    SpinEnd {
        /// The core that stopped spinning.
        core: CoreId,
    },
}

/// A subscriber to the simulation trace.
pub trait Probe {
    /// Called for every trace event, in simulation order.
    fn on_event(&mut self, now: Time, event: &TraceEvent);

    /// Called once when the simulation finishes, with the final time.
    fn on_finish(&mut self, _now: Time) {}
}

/// A probe that records every event verbatim; useful in tests.
#[derive(Default)]
pub struct RecordingProbe {
    /// The recorded `(time, event)` pairs.
    pub events: Vec<(Time, String)>,
}

impl Probe for RecordingProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        self.events.push((now, format!("{event:?}")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_probe_captures_events() {
        let mut p = RecordingProbe::default();
        p.on_event(Time::from_nanos(5), &TraceEvent::Woken { task: TaskId(3) });
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].0, Time::from_nanos(5));
        assert!(p.events[0].1.contains("Woken"));
    }

    #[test]
    fn placement_paths_are_distinct() {
        use PlacementPath::*;
        let all = [
            CfsFork,
            CfsWakeup,
            NestPrimary,
            NestReserve,
            NestFallback,
            SmoveParent,
            LoadBalance,
            SmoveTimer,
        ];
        for (i, a) in all.iter().enumerate() {
            for (j, b) in all.iter().enumerate() {
                assert_eq!(i == j, a == b);
            }
        }
    }
}
