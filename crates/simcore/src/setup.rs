//! Workload-setup interface.
//!
//! Workload generators need to allocate synchronization objects (barriers,
//! channels) before handing task specifications to the engine. [`SimSetup`]
//! is the narrow interface the engine implements for them, keeping the
//! workload crate independent of the engine crate.

use crate::ids::{BarrierId, ChannelId};

/// Facilities a workload may allocate during construction.
pub trait SimSetup {
    /// Creates a barrier that releases once `parties` tasks arrive.
    fn create_barrier(&mut self, parties: u32) -> BarrierId;

    /// Creates an empty message channel.
    fn create_channel(&mut self) -> ChannelId;

    /// Number of hardware threads on the simulated machine, so workloads
    /// can size themselves (e.g. NAS runs one task per core).
    fn n_cores(&self) -> usize;
}
