//! Shared snapshot plumbing: typed JSON accessors, bit-exact float
//! encoding, and the behaviour restore registry.
//!
//! Snapshots serialize live simulation state through the in-tree
//! [`Json`] codec. Two conventions keep restores lossless:
//!
//! * **Floats travel as bit patterns.** Internal `f64` state (PELT
//!   averages, energy integrals, throttle factors) is encoded with
//!   [`f64_bits`] as the IEEE-754 bit pattern in a `u64`, so restore
//!   reproduces the exact value — including signed zeros and any
//!   non-finite sentinel — with no dependence on decimal formatting.
//! * **Behaviours restore through a registry.** A `Box<dyn Behavior>`
//!   cannot name its own concrete type across a serialization
//!   boundary, so [`Behavior::snap`] tags its state with a kind
//!   string and [`BehaviorRegistry`] maps kinds back to constructor
//!   functions. Restore functions receive the registry again so
//!   specs nested inside pending actions (a not-yet-executed
//!   [`Action::Fork`]) restore recursively.

use std::collections::HashMap;

use crate::json::Json;
use crate::rng::SimRng;
use crate::task::{Action, Behavior, ScriptBehavior, TaskSpec};
use crate::time::Time;

/// Registry kind under which [`ScriptBehavior`] snapshots itself.
pub const SCRIPT_KIND: &str = "script";

/// Encodes an `f64` as its exact IEEE-754 bit pattern.
pub fn f64_bits(v: f64) -> Json {
    Json::u64(v.to_bits())
}

/// Looks up `key` in a JSON object, failing with a message that names
/// the missing field.
pub fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key)
        .ok_or_else(|| format!("snapshot field \"{key}\" missing"))
}

/// Reads a `u64` field.
pub fn get_u64(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("snapshot field \"{key}\" is not an integer"))
}

/// Reads a `usize` field.
pub fn get_usize(obj: &Json, key: &str) -> Result<usize, String> {
    Ok(get_u64(obj, key)? as usize)
}

/// Reads a `u32` field.
pub fn get_u32(obj: &Json, key: &str) -> Result<u32, String> {
    let v = get_u64(obj, key)?;
    u32::try_from(v).map_err(|_| format!("snapshot field \"{key}\" overflows u32"))
}

/// Reads a boolean field.
pub fn get_bool(obj: &Json, key: &str) -> Result<bool, String> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("snapshot field \"{key}\" is not a boolean"))
}

/// Reads a string field.
pub fn get_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| format!("snapshot field \"{key}\" is not a string"))
}

/// Reads an array field.
pub fn get_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(obj, key)?
        .as_arr()
        .ok_or_else(|| format!("snapshot field \"{key}\" is not an array"))
}

/// Reads an `f64` field encoded by [`f64_bits`].
pub fn get_f64_bits(obj: &Json, key: &str) -> Result<f64, String> {
    Ok(f64::from_bits(get_u64(obj, key)?))
}

/// Reads one `u64` array element.
pub fn elem_u64(j: &Json) -> Result<u64, String> {
    j.as_u64()
        .ok_or_else(|| "snapshot array element is not an integer".to_string())
}

/// Encodes a [`Time`] as nanoseconds.
pub fn time_json(t: Time) -> Json {
    Json::u64(t.as_nanos())
}

/// Reads a [`Time`] field (nanoseconds).
pub fn get_time(obj: &Json, key: &str) -> Result<Time, String> {
    Ok(Time::from_nanos(get_u64(obj, key)?))
}

/// Encodes an `Option<Time>` (`null` for `None`).
pub fn opt_time_json(t: Option<Time>) -> Json {
    t.map_or(Json::Null, time_json)
}

/// Reads an `Option<Time>` field.
pub fn get_opt_time(obj: &Json, key: &str) -> Result<Option<Time>, String> {
    let v = field(obj, key)?;
    if v.is_null() {
        return Ok(None);
    }
    v.as_u64()
        .map(Time::from_nanos)
        .map(Some)
        .ok_or_else(|| format!("snapshot field \"{key}\" is neither null nor an integer"))
}

/// Encodes a [`SimRng`]'s full state.
pub fn rng_json(rng: &SimRng) -> Json {
    Json::Arr(rng.state().iter().map(|&w| Json::u64(w)).collect())
}

/// Restores a [`SimRng`] from [`rng_json`] output.
pub fn rng_from_json(j: &Json) -> Result<SimRng, String> {
    let arr = j
        .as_arr()
        .filter(|a| a.len() == 4)
        .ok_or_else(|| "rng state is not a 4-element array".to_string())?;
    let mut s = [0u64; 4];
    for (w, v) in s.iter_mut().zip(arr) {
        *w = elem_u64(v)?;
    }
    Ok(SimRng::from_state(s))
}

/// Serializes one [`Action`], or `None` when it nests a task spec
/// whose behaviour cannot be checkpointed.
pub fn action_to_json(a: &Action) -> Option<Json> {
    let tagged = |tag: &str, fields: Vec<(&str, Json)>| {
        let mut all = vec![("t", Json::str(tag))];
        all.extend(fields);
        Some(crate::json::obj(all))
    };
    match a {
        Action::Compute { cycles } => tagged("compute", vec![("cycles", Json::u64(*cycles))]),
        Action::Sleep { ns } => tagged("sleep", vec![("ns", Json::u64(*ns))]),
        Action::Fork { child } => tagged("fork", vec![("child", task_spec_to_json(child)?)]),
        Action::WaitChildren => tagged("wait_children", vec![]),
        Action::Barrier { id } => tagged("barrier", vec![("id", Json::u64(id.0 as u64))]),
        Action::Send { ch, msgs } => tagged(
            "send",
            vec![
                ("ch", Json::u64(ch.0 as u64)),
                ("msgs", Json::u64(*msgs as u64)),
            ],
        ),
        Action::Recv { ch } => tagged("recv", vec![("ch", Json::u64(ch.0 as u64))]),
        Action::Yield => tagged("yield", vec![]),
        Action::Exit => tagged("exit", vec![]),
    }
}

/// Restores one [`Action`] serialized by [`action_to_json`].
pub fn action_from_json(j: &Json, reg: &BehaviorRegistry) -> Result<Action, String> {
    use crate::ids::{BarrierId, ChannelId};
    match get_str(j, "t")? {
        "compute" => Ok(Action::Compute {
            cycles: get_u64(j, "cycles")?,
        }),
        "sleep" => Ok(Action::Sleep {
            ns: get_u64(j, "ns")?,
        }),
        "fork" => Ok(Action::Fork {
            child: task_spec_from_json(field(j, "child")?, reg)?,
        }),
        "wait_children" => Ok(Action::WaitChildren),
        "barrier" => Ok(Action::Barrier {
            id: BarrierId(get_u32(j, "id")?),
        }),
        "send" => Ok(Action::Send {
            ch: ChannelId(get_u32(j, "ch")?),
            msgs: get_u32(j, "msgs")?,
        }),
        "recv" => Ok(Action::Recv {
            ch: ChannelId(get_u32(j, "ch")?),
        }),
        "yield" => Ok(Action::Yield),
        "exit" => Ok(Action::Exit),
        other => Err(format!("unknown action tag \"{other}\"")),
    }
}

/// Serializes a [`TaskSpec`] (label plus tagged behaviour state), or
/// `None` when the behaviour cannot be checkpointed.
pub fn task_spec_to_json(spec: &TaskSpec) -> Option<Json> {
    let behavior = behavior_to_json(spec.behavior.as_ref())?;
    Some(crate::json::obj(vec![
        ("label", Json::str(&spec.label)),
        ("behavior", behavior),
    ]))
}

/// Restores a [`TaskSpec`] serialized by [`task_spec_to_json`].
pub fn task_spec_from_json(j: &Json, reg: &BehaviorRegistry) -> Result<TaskSpec, String> {
    Ok(TaskSpec {
        label: get_str(j, "label")?.to_string(),
        behavior: behavior_from_json(field(j, "behavior")?, reg)?,
    })
}

/// Serializes a behaviour as a `{kind, state}` object, or `None` when
/// it does not support snapshots.
pub fn behavior_to_json(b: &dyn Behavior) -> Option<Json> {
    let (kind, state) = b.snap()?;
    Some(crate::json::obj(vec![
        ("kind", Json::str(kind)),
        ("state", state),
    ]))
}

/// Restores a behaviour from [`behavior_to_json`] output through the
/// registry.
pub fn behavior_from_json(j: &Json, reg: &BehaviorRegistry) -> Result<Box<dyn Behavior>, String> {
    reg.restore(get_str(j, "kind")?, field(j, "state")?)
}

/// A restore function: rebuilds one behaviour kind from its saved
/// state. Receives the registry so nested specs restore recursively.
pub type RestoreFn = fn(&Json, &BehaviorRegistry) -> Result<Box<dyn Behavior>, String>;

/// Maps behaviour kind strings back to constructors.
///
/// Each crate that defines snapshotable behaviours contributes a
/// `register_behaviors(&mut BehaviorRegistry)` function; the top-level
/// runner chains them so every kind reachable from its workloads is
/// restorable. [`ScriptBehavior`] is pre-registered.
pub struct BehaviorRegistry {
    entries: HashMap<&'static str, RestoreFn>,
}

impl Default for BehaviorRegistry {
    fn default() -> BehaviorRegistry {
        BehaviorRegistry::new()
    }
}

impl BehaviorRegistry {
    /// Creates a registry with the simcore-native kinds registered.
    pub fn new() -> BehaviorRegistry {
        let mut reg = BehaviorRegistry {
            entries: HashMap::new(),
        };
        reg.register(SCRIPT_KIND, |state, reg| {
            let actions = state
                .as_arr()
                .ok_or_else(|| "script state is not an array".to_string())?
                .iter()
                .map(|a| action_from_json(a, reg))
                .collect::<Result<Vec<Action>, String>>()?;
            Ok(Box::new(ScriptBehavior::new(actions)))
        });
        reg
    }

    /// Registers (or replaces) the restore function for `kind`.
    pub fn register(&mut self, kind: &'static str, f: RestoreFn) {
        self.entries.insert(kind, f);
    }

    /// Restores a behaviour of the given kind from its saved state.
    pub fn restore(&self, kind: &str, state: &Json) -> Result<Box<dyn Behavior>, String> {
        let f = self.entries.get(kind).ok_or_else(|| {
            format!("no restore function registered for behaviour kind \"{kind}\"")
        })?;
        f(state, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ChannelId;

    #[test]
    fn f64_bits_round_trip_is_exact() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, f64::NAN] {
            let j = f64_bits(v);
            let obj = crate::json::obj(vec![("x", j)]);
            let back = get_f64_bits(&obj, "x").unwrap();
            assert_eq!(v.to_bits(), back.to_bits());
        }
    }

    #[test]
    fn rng_state_round_trips() {
        let mut rng = SimRng::new(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut restored = rng_from_json(&rng_json(&rng)).unwrap();
        let mut orig = SimRng::from_state(rng.state());
        for _ in 0..32 {
            assert_eq!(orig.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn script_behavior_snapshots_remaining_actions() {
        let mut b = ScriptBehavior::new(vec![
            Action::Compute { cycles: 7 },
            Action::Send {
                ch: ChannelId(3),
                msgs: 2,
            },
            Action::Yield,
        ]);
        let mut rng = SimRng::new(0);
        // Consume one action; the snapshot must hold only the remainder.
        assert!(matches!(b.next(&mut rng), Action::Compute { cycles: 7 }));
        let reg = BehaviorRegistry::new();
        let snapped = behavior_to_json(&b).unwrap();
        let mut restored = behavior_from_json(&snapped, &reg).unwrap();
        assert!(matches!(
            restored.next(&mut rng),
            Action::Send {
                ch: ChannelId(3),
                msgs: 2
            }
        ));
        assert!(matches!(restored.next(&mut rng), Action::Yield));
        assert!(matches!(restored.next(&mut rng), Action::Exit));
    }

    #[test]
    fn fork_actions_nest_recursively() {
        let inner = TaskSpec::script("child", vec![Action::Exit]);
        let a = Action::Fork { child: inner };
        let j = action_to_json(&a).unwrap();
        let reg = BehaviorRegistry::new();
        match action_from_json(&j, &reg).unwrap() {
            Action::Fork { child } => assert_eq!(child.label, "child"),
            other => panic!("wrong action: {other:?}"),
        }
    }

    #[test]
    fn unsnapshotable_behaviors_poison_the_spec() {
        let spec = TaskSpec::new(
            "fn",
            Box::new(crate::task::FnBehavior::new(|_| Action::Exit)),
        );
        assert!(task_spec_to_json(&spec).is_none());
        let a = Action::Fork { child: spec };
        assert!(action_to_json(&a).is_none());
    }

    #[test]
    fn unknown_kind_is_a_typed_error() {
        let reg = BehaviorRegistry::new();
        let err = reg.restore("martian", &Json::Null).err().unwrap();
        assert!(err.contains("martian"), "{err}");
    }
}
