//! Minimal JSON tree, writer, and parser.
//!
//! The workspace builds offline with no external crates, so it carries its
//! own JSON support. The codec lives here in the substrate crate so every
//! layer — the scenario registry, the experiment harness, the figure
//! binaries — shares one canonical serialization. Two properties matter
//! more than speed:
//!
//! * **Canonical output** — object keys keep insertion order, floats are
//!   printed with Rust's shortest-round-trip formatting, and the writer is
//!   purely a function of the tree. Two equal trees always serialize to
//!   identical bytes, which is what makes `results/*.json` byte-comparable
//!   across worker counts.
//! * **Lossless numbers** — numbers are stored as their literal text
//!   ([`Json::Num`]); a parsed file re-serializes to the same bytes, and
//!   `u64` values larger than 2^53 survive a cache round-trip.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A float value; non-finite floats become `null` (JSON has no NaN).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// An unsigned integer value.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A usize value.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A string value.
    pub fn str(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    /// An optional integer: `None` becomes `null`.
    pub fn opt_u64(v: Option<u64>) -> Json {
        v.map_or(Json::Null, Json::u64)
    }

    /// An optional float: `None` becomes `null`.
    pub fn opt_f64(v: Option<f64>) -> Json {
        v.map_or(Json::Null, Json::f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `true` for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds an object from key/value pairs (order preserved).
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message describing the first syntax error, with its byte
/// offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    if text.is_empty() || text.parse::<f64>().is_err() {
        return Err(format!("invalid number at byte {start}"));
    }
    Ok(Json::Num(text.to_string()))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by this crate's
                        // writer; map lone surrogates to the replacement
                        // character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => {
                        return Err(format!("bad escape '\\{}'", *other as char));
                    }
                }
            }
            Some(_) => {
                // Advance by one UTF-8 character.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_tree() {
        let tree = obj(vec![
            ("name", Json::str("fig04")),
            ("n", Json::u64(18446744073709551615)),
            ("pi", Json::f64(std::f64::consts::PI)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            (
                "arr",
                Json::Arr(vec![Json::u64(1), Json::str("two"), Json::f64(0.1)]),
            ),
        ]);
        let text = tree.to_pretty();
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed, tree);
        // Canonical: re-serializing parsed output is byte-identical.
        assert_eq!(parsed.to_pretty(), text);
    }

    #[test]
    fn u64_survives_beyond_f64_precision() {
        let v = Json::u64(u64::MAX - 1);
        let text = v.to_pretty();
        let parsed = parse(&text).expect("parses");
        assert_eq!(parsed.as_u64(), Some(u64::MAX - 1));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, 1e-300, 2.5e300, -0.0, 123456.789] {
            let text = Json::f64(v).to_pretty();
            let parsed = parse(&text).expect("parses");
            let back = parsed.as_f64().expect("number");
            assert_eq!(back.to_bits(), v.to_bits(), "{v} → {text}");
        }
    }

    #[test]
    fn nan_and_inf_become_null() {
        assert!(Json::f64(f64::NAN).is_null());
        assert!(Json::f64(f64::INFINITY).is_null());
    }

    #[test]
    fn escapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{0001}");
        let text = v.to_pretty();
        assert!(text.contains("\\\"") && text.contains("\\u0001"));
        assert_eq!(parse(&text).expect("parses"), v);
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"a": 1, "b": [true, null], "c": "x"}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("b").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert!(v.get("d").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::str("héllo → 世界");
        assert_eq!(parse(&v.to_pretty()).expect("parses"), v);
    }
}
