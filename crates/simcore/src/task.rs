//! The task behaviour model.
//!
//! A simulated task is driven by a [`Behavior`]: a state machine that, each
//! time the task needs something to do, yields the next [`Action`]
//! (compute, sleep, fork a child, wait, synchronize, message, exit). The
//! engine executes actions; behaviours never see the machine, only their
//! own logical progress, which mirrors how real applications are oblivious
//! to scheduling.
//!
//! Work is expressed in *cycles*, not time: the same behaviour finishes
//! faster on a core running at a higher frequency, which is the effect the
//! Nest paper exploits.

use crate::ids::{BarrierId, ChannelId};
use crate::rng::SimRng;
use crate::units::Cycles;

/// The next thing a task wants to do.
#[derive(Debug)]
pub enum Action {
    /// Execute `cycles` cycles of work on the current core.
    Compute {
        /// Amount of work in CPU cycles.
        cycles: Cycles,
    },
    /// Block for a fixed duration (I/O wait, timer, think time).
    Sleep {
        /// Sleep duration in nanoseconds.
        ns: u64,
    },
    /// Create a child task; the scheduler chooses its core (the paper's
    /// *fork* placement path). The parent continues running.
    Fork {
        /// Specification of the child task.
        child: TaskSpec,
    },
    /// Block until every child this task has forked has exited.
    ///
    /// Waking from the wait goes through the scheduler's *wakeup*
    /// placement path.
    WaitChildren,
    /// Enter a barrier; blocks until the barrier's full complement of
    /// tasks has arrived, then all waiters wake (each through wakeup
    /// placement).
    Barrier {
        /// The barrier to wait on.
        id: BarrierId,
    },
    /// Append `msgs` messages to a channel, waking one blocked receiver
    /// per message.
    Send {
        /// Destination channel.
        ch: ChannelId,
        /// Number of messages to enqueue.
        msgs: u32,
    },
    /// Consume one message from a channel, blocking if it is empty.
    Recv {
        /// Source channel.
        ch: ChannelId,
    },
    /// Relinquish the core; the task stays runnable and is re-enqueued.
    Yield,
    /// Terminate the task.
    Exit,
}

/// A task's behaviour: the generator of its [`Action`] sequence.
///
/// Implementations must be deterministic given the `rng` stream they are
/// handed (the engine gives each task a forked, independent stream).
pub trait Behavior {
    /// Returns the task's next action.
    ///
    /// Called after the previous action completes (compute finished, sleep
    /// expired, message received, …). Returning [`Action::Exit`] ends the
    /// task; `next` is not called again afterwards.
    fn next(&mut self, rng: &mut SimRng) -> Action;

    /// Serializes the behaviour's current state for a snapshot, as a
    /// `(kind, state)` pair, or `None` if this behaviour cannot be
    /// checkpointed.
    ///
    /// `kind` is a registry key (see [`crate::snap::BehaviorRegistry`]);
    /// `state` must hold everything a registered restore function needs
    /// to reconstruct the behaviour mid-flight. The default is `None`:
    /// a simulation containing such a behaviour refuses to snapshot
    /// rather than silently losing state.
    fn snap(&self) -> Option<(&'static str, crate::json::Json)> {
        None
    }
}

/// The full specification of a task to create.
pub struct TaskSpec {
    /// Human-readable label used in traces (e.g. `"cc1"`, `"gc-worker"`).
    pub label: String,
    /// The behaviour driving the task.
    pub behavior: Box<dyn Behavior>,
}

impl TaskSpec {
    /// Creates a task specification.
    pub fn new(label: impl Into<String>, behavior: Box<dyn Behavior>) -> TaskSpec {
        TaskSpec {
            label: label.into(),
            behavior,
        }
    }

    /// Creates a task that executes a fixed script of actions.
    pub fn script(label: impl Into<String>, actions: Vec<Action>) -> TaskSpec {
        TaskSpec::new(label, Box::new(ScriptBehavior::new(actions)))
    }
}

impl std::fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskSpec")
            .field("label", &self.label)
            .finish()
    }
}

/// A behaviour that plays back a fixed list of actions, then exits.
///
/// # Examples
///
/// ```
/// use nest_simcore::rng::SimRng;
/// use nest_simcore::task::{Action, Behavior, ScriptBehavior};
///
/// let mut b = ScriptBehavior::new(vec![Action::Compute { cycles: 100 }]);
/// let mut rng = SimRng::new(0);
/// assert!(matches!(b.next(&mut rng), Action::Compute { cycles: 100 }));
/// assert!(matches!(b.next(&mut rng), Action::Exit));
/// assert!(matches!(b.next(&mut rng), Action::Exit));
/// ```
pub struct ScriptBehavior {
    actions: std::vec::IntoIter<Action>,
}

impl ScriptBehavior {
    /// Creates a script behaviour from an action list.
    pub fn new(actions: Vec<Action>) -> ScriptBehavior {
        ScriptBehavior {
            actions: actions.into_iter(),
        }
    }
}

impl Behavior for ScriptBehavior {
    fn next(&mut self, _rng: &mut SimRng) -> Action {
        self.actions.next().unwrap_or(Action::Exit)
    }

    fn snap(&self) -> Option<(&'static str, crate::json::Json)> {
        let remaining: Vec<crate::json::Json> = self
            .actions
            .as_slice()
            .iter()
            .map(crate::snap::action_to_json)
            .collect::<Option<Vec<_>>>()?;
        Some((crate::snap::SCRIPT_KIND, crate::json::Json::Arr(remaining)))
    }
}

/// A behaviour built from a closure, convenient for tests and small
/// workloads.
pub struct FnBehavior<F: FnMut(&mut SimRng) -> Action> {
    f: F,
}

impl<F: FnMut(&mut SimRng) -> Action> FnBehavior<F> {
    /// Wraps a closure as a behaviour.
    pub fn new(f: F) -> FnBehavior<F> {
        FnBehavior { f }
    }
}

impl<F: FnMut(&mut SimRng) -> Action> Behavior for FnBehavior<F> {
    fn next(&mut self, rng: &mut SimRng) -> Action {
        (self.f)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_plays_in_order_then_exits() {
        let mut rng = SimRng::new(0);
        let mut b =
            ScriptBehavior::new(vec![Action::Compute { cycles: 1 }, Action::Sleep { ns: 2 }]);
        assert!(matches!(b.next(&mut rng), Action::Compute { cycles: 1 }));
        assert!(matches!(b.next(&mut rng), Action::Sleep { ns: 2 }));
        assert!(matches!(b.next(&mut rng), Action::Exit));
    }

    #[test]
    fn fn_behavior_delegates() {
        let mut rng = SimRng::new(0);
        let mut calls = 0;
        {
            let mut b = FnBehavior::new(|_| {
                calls += 1;
                Action::Yield
            });
            assert!(matches!(b.next(&mut rng), Action::Yield));
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn spec_script_constructor() {
        let spec = TaskSpec::script("t", vec![Action::Exit]);
        assert_eq!(spec.label, "t");
        assert_eq!(format!("{spec:?}"), "TaskSpec { label: \"t\" }");
    }
}
