//! Identifier newtypes for simulated entities.
//!
//! All identifiers are dense indexes into the owning arena (core table,
//! task table, …). Newtypes prevent a task id from being used where a core
//! id is expected — a class of bug that is otherwise silent in a simulator
//! where everything is a small integer.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a usable array index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from an array index.
            ///
            /// # Panics
            ///
            /// Panics if `idx` does not fit in `u32`.
            pub fn from_index(idx: usize) -> $name {
                $name(u32::try_from(idx).expect("id overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

define_id! {
    /// A hardware thread.
    ///
    /// Following the paper's terminology, "core" means *hardware thread*:
    /// two hardware threads sharing a physical core are hyperthreads of
    /// each other. Cores are numbered socket-major so that cores on the
    /// same socket have adjacent numbers (the renumbering the paper applies
    /// to its execution traces).
    CoreId
}

define_id! {
    /// A schedulable task (thread or process; the distinction is
    /// irrelevant to placement).
    TaskId
}

define_id! {
    /// A processor socket. On all modeled machines a die coincides with a
    /// socket (all cores of a socket share the last-level cache), matching
    /// the paper's hardware.
    SocketId
}

define_id! {
    /// A CCX / last-level-cache domain: the cores of one socket that share
    /// an LLC slice. On the paper's Intel machines every socket is a single
    /// CCX (the die coincides with the LLC domain), so CCX ids coincide
    /// with socket ids there; synthetic AMD-like machines split a socket
    /// into several CCXs. CCXs are numbered socket-major, so CCXs of the
    /// same socket have adjacent numbers.
    CcxId
}

define_id! {
    /// A synchronization barrier used by HPC-style workloads.
    BarrierId
}

define_id! {
    /// A message channel used by messaging workloads (hackbench, schbench,
    /// servers).
    ChannelId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let c = CoreId::from_index(42);
        assert_eq!(c.index(), 42);
        assert_eq!(c, CoreId(42));
    }

    #[test]
    fn ordering_follows_numbering() {
        assert!(CoreId(1) < CoreId(2));
    }

    #[test]
    fn debug_and_display() {
        assert_eq!(format!("{:?}", TaskId(7)), "TaskId(7)");
        assert_eq!(format!("{}", TaskId(7)), "7");
    }
}
