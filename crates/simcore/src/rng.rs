//! Deterministic random-number generation.
//!
//! All randomness in the simulator flows through [`SimRng`], an in-tree
//! xoshiro256** generator seeded through SplitMix64 (Blackman & Vigna's
//! recommended seeding procedure). The implementation is self-contained so
//! the workspace builds with no external crates and no network access; the
//! wrapper exposes exactly the distributions the workload models need and
//! supports deterministic splitting ([`SimRng::fork`]) so that independent
//! subsystems (e.g. each task's behaviour) consume independent streams —
//! adding a draw in one workload does not perturb another.
//!
//! The module also hosts the seed-derivation helpers ([`splitmix64`],
//! [`mix64`], [`hash_str`]) that the experiment harness uses to derive
//! per-cell seeds: a cell's seed is a pure function of the base seed and
//! the cell's coordinates, never of execution order, which is what makes
//! parallel experiment runs byte-identical to serial ones.

/// One step of the SplitMix64 sequence: returns the output for state `x`.
///
/// SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) is a bijective finalizer
/// with good avalanche behaviour, which also makes it a solid one-shot
/// 64-bit hash.
///
/// # Examples
///
/// ```
/// use nest_simcore::rng::splitmix64;
///
/// // Deterministic and sensitive to every input bit.
/// assert_eq!(splitmix64(1), splitmix64(1));
/// assert_ne!(splitmix64(1), splitmix64(2));
/// ```
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds `word` into accumulator `acc`, SplitMix-style.
///
/// Repeated calls build an order-sensitive hash of a word sequence:
/// `mix64(mix64(seed, a), b)` differs from `mix64(mix64(seed, b), a)`.
pub fn mix64(acc: u64, word: u64) -> u64 {
    splitmix64(acc ^ splitmix64(word))
}

/// Hashes a string to a 64-bit value (for labeling seed streams).
///
/// FNV-1a over the UTF-8 bytes, finalized with [`splitmix64`] for better
/// diffusion of the high bits.
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    splitmix64(h)
}

/// A deterministic, splittable random-number generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use nest_simcore::rng::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The 256-bit xoshiro state is filled by iterating SplitMix64 from
    /// the seed, the seeding procedure the xoshiro authors recommend.
    pub fn new(seed: u64) -> SimRng {
        let mut x = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(x);
        }
        // All-zero state is the one invalid xoshiro state; splitmix64 of
        // four consecutive states cannot all be zero, but keep the guard
        // explicit for clarity.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SimRng { s }
    }

    /// Returns the raw 256-bit xoshiro state (for snapshots).
    ///
    /// Together with [`SimRng::from_state`] this makes the generator
    /// losslessly checkpointable: restoring the returned words yields a
    /// generator whose future draws are bit-identical to this one's.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Reconstructs a generator from a state captured by
    /// [`SimRng::state`].
    ///
    /// The all-zero state is invalid for xoshiro and is coerced to the
    /// same fallback [`SimRng::new`] uses; a captured state can never be
    /// all-zero, so round-trips are exact.
    pub fn from_state(s: [u64; 4]) -> SimRng {
        if s == [0, 0, 0, 0] {
            return SimRng {
                s: [0x9E37_79B9_7F4A_7C15, 0, 0, 0],
            };
        }
        SimRng { s }
    }

    /// Derives an independent generator for a labeled subsystem.
    ///
    /// The child stream is a pure function of the parent seed state and the
    /// label, so reordering *draws* between subsystems cannot change any
    /// subsystem's stream.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.next_u64();
        SimRng::new(s ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next raw 64-bit value (xoshiro256** step).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Returns a uniformly distributed integer in `[lo, hi]`.
    ///
    /// Uses Lemire's widening-multiply rejection method, so every value in
    /// the range is exactly equally likely.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        let n = span + 1;
        // Rejection zone below 2^64 mod n keeps the draw unbiased.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let wide = (x as u128) * (n as u128);
            if (wide as u64) >= threshold {
                return lo + (wide >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.uniform_f64() < p
    }

    /// Returns a sample from an exponential distribution with the given
    /// mean, as used for inter-arrival and service times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        // u ∈ (0, 1]: never 0, so ln(u) is finite; u = 1 gives sample 0.
        let u = ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        -mean * u.ln()
    }

    /// Returns a sample from a log-normal-ish "jittered" value: `base`
    /// multiplied by a factor uniform in `[1 - jitter, 1 + jitter]`.
    ///
    /// Used to desynchronize otherwise identical tasks (e.g. NAS workers).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is outside `[0, 1]`.
    pub fn jitter(&mut self, base: u64, jitter: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&jitter),
            "jitter out of range: {jitter}"
        );
        if jitter == 0.0 || base == 0 {
            return base;
        }
        let factor = 1.0 + jitter * (2.0 * self.uniform_f64() - 1.0);
        ((base as f64) * factor).round().max(0.0) as u64
    }

    /// Samples an index from a slice of relative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative or non-finite,
    /// or the weights sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "no weights");
        let total: f64 = weights
            .iter()
            .inspect(|w| {
                assert!(
                    w.is_finite() && **w >= 0.0,
                    "weights must be non-negative and finite"
                );
            })
            .sum();
        assert!(total > 0.0, "weights must sum > 0");
        let mut target = self.uniform_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        // Float round-off can leave a vanishing remainder past the last
        // positive weight; attribute it there.
        weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("some weight is positive")
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64(0, i as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns a standard-normal sample (Box–Muller transform).
    ///
    /// Consumes exactly two raw draws per call regardless of the sample
    /// value, so interleaving normal draws with other distributions keeps
    /// streams reproducible.
    pub fn normal(&mut self) -> f64 {
        // u1 ∈ (0, 1] so ln(u1) is finite; u2 ∈ [0, 1).
        let u1 = ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let u2 = self.uniform_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a log-normal sample `exp(mu + sigma·Z)` with `Z` standard
    /// normal, as used for heavy-tailed service times.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-finite or `sigma` is negative.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid lognormal parameters: mu={mu}, sigma={sigma}"
        );
        (mu + sigma * self.normal()).exp()
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_xoshiro_reference_vector() {
        // State {1,2,3,4} must produce the xoshiro256** reference outputs.
        let mut r = SimRng { s: [1, 2, 3, 4] };
        let expected: [u64; 4] = [11520, 0, 1509978240, 1215971899390074240];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // The canonical SplitMix64 seed-0 output sequence: the generator
        // advances its state by the golden gamma before each finalize, so
        // output i is splitmix64(i * gamma).
        let gamma = 0x9E37_79B9_7F4A_7C15u64;
        let expected: [u64; 3] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
        ];
        for (i, e) in expected.into_iter().enumerate() {
            assert_eq!(splitmix64(gamma.wrapping_mul(i as u64)), e);
        }
    }

    #[test]
    fn mix64_is_order_sensitive() {
        assert_ne!(mix64(mix64(0, 1), 2), mix64(mix64(0, 2), 1));
        assert_eq!(mix64(7, 9), mix64(7, 9));
    }

    #[test]
    fn hash_str_distinguishes_labels() {
        assert_eq!(hash_str("Nest sched"), hash_str("Nest sched"));
        assert_ne!(hash_str("Nest sched"), hash_str("Nest perf"));
        assert_ne!(hash_str(""), hash_str(" "));
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let mut parent = SimRng::new(1);
        let mut c1 = parent.fork(10);
        let mut parent2 = SimRng::new(1);
        let mut c2 = parent2.fork(11);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::new(9).fork(5);
        let mut b = SimRng::new(9).fork(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(2);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(r.uniform_u64(5, 5), 5);
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut r = SimRng::new(8);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.uniform_u64(0, 9) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::new(10);
        for _ in 0..10_000 {
            let v = r.uniform_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.jitter(1000, 0.1);
            assert!((900..=1100).contains(&v), "{v}");
        }
        assert_eq!(r.jitter(1000, 0.0), 1000);
        assert_eq!(r.jitter(0, 0.5), 0);
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut r = SimRng::new(6);
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[r.weighted_index(&[1.0, 9.0])] += 1;
        }
        assert!(counts[1] > counts[0]);
    }

    #[test]
    fn weighted_index_skips_zero_weights() {
        let mut r = SimRng::new(12);
        for _ in 0..100 {
            assert_eq!(r.weighted_index(&[0.0, 1.0, 0.0]), 1);
        }
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance was {var}");
    }

    #[test]
    fn normal_draw_count_is_fixed() {
        // Two generators stay in lockstep when one interleaves normal
        // draws and the other burns two raw draws per normal.
        let mut a = SimRng::new(13);
        let mut b = SimRng::new(13);
        let _ = a.normal();
        let _ = b.next_u64();
        let _ = b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        // E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        let (mu, sigma) = (1.0f64, 0.5f64);
        let expected = (mu + sigma * sigma / 2.0).exp();
        let mut r = SimRng::new(14);
        let n = 40_000;
        let mean = (0..n).map(|_| r.lognormal(mu, sigma)).sum::<f64>() / n as f64;
        assert!((mean - expected).abs() / expected < 0.05, "mean was {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(7);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
