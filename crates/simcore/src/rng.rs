//! Deterministic random-number generation.
//!
//! All randomness in the simulator flows through [`SimRng`], a thin wrapper
//! over a seeded [`rand::rngs::StdRng`]. The wrapper exposes exactly the
//! distributions the workload models need and supports deterministic
//! splitting ([`SimRng::fork`]) so that independent subsystems (e.g. each
//! task's behaviour) consume independent streams — adding a draw in one
//! workload does not perturb another.

use rand::distributions::Distribution;
use rand::Rng;
use rand::RngCore;
use rand::SeedableRng;

/// A deterministic, splittable random-number generator.
///
/// # Examples
///
/// ```
/// use nest_simcore::rng::SimRng;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub struct SimRng {
    inner: rand::rngs::StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator for a labeled subsystem.
    ///
    /// The child stream is a pure function of the parent seed state and the
    /// label, so reordering *draws* between subsystems cannot change any
    /// subsystem's stream.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.inner.next_u64();
        SimRng::new(s ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniformly distributed integer in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        self.inner.gen_range(lo..=hi)
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen::<f64>() < p
    }

    /// Returns a sample from an exponential distribution with the given
    /// mean, as used for inter-arrival and service times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Returns a sample from a log-normal-ish "jittered" value: `base`
    /// multiplied by a factor uniform in `[1 - jitter, 1 + jitter]`.
    ///
    /// Used to desynchronize otherwise identical tasks (e.g. NAS workers).
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is outside `[0, 1]`.
    pub fn jitter(&mut self, base: u64, jitter: f64) -> u64 {
        assert!((0.0..=1.0).contains(&jitter), "jitter out of range: {jitter}");
        if jitter == 0.0 || base == 0 {
            return base;
        }
        let factor = 1.0 + jitter * (2.0 * self.inner.gen::<f64>() - 1.0);
        ((base as f64) * factor).round().max(0.0) as u64
    }

    /// Samples an index from a slice of relative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "no weights");
        let dist = rand::distributions::WeightedIndex::new(weights)
            .expect("weights must be non-negative and sum > 0");
        dist.sample(&mut self.inner)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let mut parent = SimRng::new(1);
        let mut c1 = parent.fork(10);
        let mut parent2 = SimRng::new(1);
        let mut c2 = parent2.fork(11);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::new(9).fork(5);
        let mut b = SimRng::new(9).fork(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(2);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = SimRng::new(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.jitter(1000, 0.1);
            assert!((900..=1100).contains(&v), "{v}");
        }
        assert_eq!(r.jitter(1000, 0.0), 1000);
        assert_eq!(r.jitter(0, 0.5), 0);
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut r = SimRng::new(6);
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[r.weighted_index(&[1.0, 9.0])] += 1;
        }
        assert!(counts[1] > counts[0]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(7);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
