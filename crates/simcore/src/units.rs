//! Frequency and work units.
//!
//! Core frequencies are stored in kilohertz ([`Freq`]); task work is
//! expressed in CPU cycles ([`Cycles`]). A compute segment of `c` cycles on
//! a core running at frequency `f` takes `c / f` seconds — this conversion
//! ([`Freq::nanos_for_cycles`] / [`Freq::cycles_in_nanos`]) is the single
//! place where frequency affects task progress, and therefore the mechanism
//! behind every speedup reported in the paper.

use std::fmt;

/// A number of CPU cycles of work.
pub type Cycles = u64;

/// A core frequency in kilohertz.
///
/// Kilohertz granularity matches what Linux's cpufreq subsystem exposes and
/// keeps all arithmetic in integers for determinism.
///
/// # Examples
///
/// ```
/// use nest_simcore::units::Freq;
///
/// let f = Freq::from_ghz(2.0);
/// // 2 GHz executes 2 cycles per nanosecond.
/// assert_eq!(f.nanos_for_cycles(4_000_000), 2_000_000);
/// assert_eq!(f.cycles_in_nanos(1_000), 2_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Freq(u64);

impl Freq {
    /// The zero frequency (a fully halted core).
    pub const ZERO: Freq = Freq(0);

    /// Creates a frequency from a kilohertz count.
    pub const fn from_khz(khz: u64) -> Freq {
        Freq(khz)
    }

    /// Creates a frequency from a megahertz count.
    pub const fn from_mhz(mhz: u64) -> Freq {
        Freq(mhz * 1_000)
    }

    /// Creates a frequency from a (fractional) gigahertz value.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is negative or not finite.
    pub fn from_ghz(ghz: f64) -> Freq {
        assert!(ghz.is_finite() && ghz >= 0.0, "invalid frequency: {ghz}");
        Freq((ghz * 1_000_000.0).round() as u64)
    }

    /// Returns the frequency in kilohertz.
    pub const fn as_khz(self) -> u64 {
        self.0
    }

    /// Returns the frequency in (fractional) gigahertz.
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the time, in nanoseconds, needed to execute `cycles` cycles
    /// at this frequency, rounded up so work never finishes early.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero and `cycles` is nonzero: a halted
    /// core cannot make progress, and scheduling work on one is a
    /// simulation bug.
    pub fn nanos_for_cycles(self, cycles: Cycles) -> u64 {
        if cycles == 0 {
            return 0;
        }
        assert!(self.0 > 0, "cannot execute {cycles} cycles at 0 Hz");
        // cycles / (khz * 1e3 / 1e9) = cycles * 1e6 / khz, rounded up.
        let num = cycles as u128 * 1_000_000;
        num.div_ceil(self.0 as u128) as u64
    }

    /// Returns the number of cycles executed in `nanos` nanoseconds at this
    /// frequency, rounded down.
    pub fn cycles_in_nanos(self, nanos: u64) -> Cycles {
        (nanos as u128 * self.0 as u128 / 1_000_000) as u64
    }
}

impl fmt::Debug for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kHz", self.0)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GHz", self.as_ghz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_round_trip() {
        let f = Freq::from_ghz(3.7);
        assert_eq!(f.as_khz(), 3_700_000);
        assert!((f.as_ghz() - 3.7).abs() < 1e-9);
    }

    #[test]
    fn mhz_and_khz_agree() {
        assert_eq!(Freq::from_mhz(2100), Freq::from_khz(2_100_000));
    }

    #[test]
    fn nanos_for_cycles_exact() {
        // 1 GHz: one cycle per nanosecond.
        let f = Freq::from_ghz(1.0);
        assert_eq!(f.nanos_for_cycles(12_345), 12_345);
    }

    #[test]
    fn nanos_for_cycles_rounds_up() {
        // 3 GHz: 10 cycles take 10/3 ns, which must round up to 4.
        let f = Freq::from_ghz(3.0);
        assert_eq!(f.nanos_for_cycles(10), 4);
    }

    #[test]
    fn zero_cycles_take_zero_time_even_at_zero_hz() {
        assert_eq!(Freq::ZERO.nanos_for_cycles(0), 0);
    }

    #[test]
    #[should_panic(expected = "0 Hz")]
    fn nonzero_cycles_at_zero_hz_panic() {
        let _ = Freq::ZERO.nanos_for_cycles(1);
    }

    #[test]
    fn cycles_in_nanos_inverse_bound() {
        // Executing for the time computed for `c` cycles yields at least `c`
        // cycles back (round-up then round-down).
        let f = Freq::from_khz(2_345_678);
        for c in [1u64, 7, 1_000, 123_456_789] {
            let ns = f.nanos_for_cycles(c);
            assert!(f.cycles_in_nanos(ns) >= c);
        }
    }

    #[test]
    fn display_formats_ghz() {
        assert_eq!(format!("{}", Freq::from_ghz(2.1)), "2.10GHz");
    }
}
