//! Deterministic discrete-event simulation primitives.
//!
//! This crate provides the foundation shared by the whole Nest simulator:
//! simulated time ([`Time`]), frequency units ([`Freq`]), entity identifiers
//! ([`CoreId`], [`TaskId`], [`SocketId`]), a stable-ordered event queue
//! ([`EventQueue`]), a seedable random-number generator ([`SimRng`]), the
//! task behaviour model ([`Action`], [`Behavior`], [`TaskSpec`]), and the
//! probe (tracing) interface ([`Probe`], [`TraceEvent`]).
//!
//! Everything here is deterministic: two simulations constructed with the
//! same machine, workload, and seed produce bit-identical event sequences.
//! That property underpins both the test suite and the reproducibility of
//! the paper's experiments. The one intentionally nondeterministic module
//! is [`profile`], the opt-in self-profiler — its wall-clock readings only
//! ever reach telemetry sidecars, never simulation results.

#![deny(missing_docs)]

pub mod events;
pub mod ids;
pub mod json;
pub mod probe;
pub mod profile;
pub mod rng;
pub mod setup;
pub mod snap;
pub mod task;
pub mod time;
pub mod units;

pub use events::{EventKey, EventQueue};
pub use ids::{BarrierId, CcxId, ChannelId, CoreId, SocketId, TaskId};
pub use json::Json;
pub use probe::{PlacementPath, Probe, StopReason, TraceEvent};
pub use rng::SimRng;
pub use setup::SimSetup;
pub use snap::BehaviorRegistry;
pub use task::{Action, Behavior, FnBehavior, ScriptBehavior, TaskSpec};
pub use time::{Time, MICROSEC, MILLISEC, NANOSEC, SEC, TICK_NS};
pub use units::{Cycles, Freq};
