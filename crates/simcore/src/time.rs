//! Simulated time.
//!
//! Time is measured in nanoseconds since the start of the simulation and is
//! represented by the [`Time`] newtype. Durations are plain `u64`
//! nanosecond counts; the constants [`NANOSEC`], [`MICROSEC`], [`MILLISEC`],
//! [`SEC`], and [`TICK_NS`] make call sites readable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One nanosecond, the base unit of simulated time.
pub const NANOSEC: u64 = 1;
/// One microsecond in nanoseconds.
pub const MICROSEC: u64 = 1_000;
/// One millisecond in nanoseconds.
pub const MILLISEC: u64 = 1_000_000;
/// One second in nanoseconds.
pub const SEC: u64 = 1_000_000_000;

/// Duration of one scheduler tick.
///
/// The paper's kernels run at 250 Hz, i.e. a 4 ms tick; Table 1's
/// tick-denominated parameters (`P_remove` = 2 ticks = 8 ms) rely on this
/// value.
pub const TICK_NS: u64 = 4 * MILLISEC;

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// `Time` is `Copy`, totally ordered, and supports adding nanosecond
/// durations. Subtracting two `Time`s yields a `u64` duration and panics on
/// underflow (a simulation bug, not a recoverable condition).
///
/// # Examples
///
/// ```
/// use nest_simcore::time::{Time, MILLISEC};
///
/// let t = Time::ZERO + 3 * MILLISEC;
/// assert_eq!(t.as_nanos(), 3_000_000);
/// assert_eq!(t - Time::ZERO, 3 * MILLISEC);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// A time far beyond any simulated horizon, usable as a sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a nanosecond count.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Creates a time from a microsecond count.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * MICROSEC)
    }

    /// Creates a time from a millisecond count.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * MILLISEC)
    }

    /// Creates a time from a second count.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * SEC)
    }

    /// Returns the nanosecond count since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }

    /// Returns the duration since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the index of the scheduler tick period containing this time.
    pub const fn tick_index(self) -> u64 {
        self.0 / TICK_NS
    }

    /// Rounds down to the start of the enclosing interval of length
    /// `interval_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ns` is zero.
    pub const fn align_down(self, interval_ns: u64) -> Time {
        Time(self.0 - self.0 % interval_ns)
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Time {
    type Output = Time;

    fn add(self, ns: u64) -> Time {
        Time(self.0 + ns)
    }
}

impl AddAssign<u64> for Time {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub<Time> for Time {
    type Output = u64;

    fn sub(self, other: Time) -> u64 {
        self.0
            .checked_sub(other.0)
            .expect("time subtraction underflow: simulation clock went backwards")
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(Time::from_micros(1), Time::from_nanos(MICROSEC));
        assert_eq!(Time::from_millis(1), Time::from_nanos(MILLISEC));
        assert_eq!(Time::from_secs(1), Time::from_nanos(SEC));
    }

    #[test]
    fn add_and_sub_round_trip() {
        let t = Time::from_millis(5);
        let u = t + 250;
        assert_eq!(u - t, 250);
        assert_eq!(u.as_nanos(), 5 * MILLISEC + 250);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_backwards_clock() {
        let _ = Time::ZERO - Time::from_nanos(1);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Time::ZERO.saturating_since(Time::from_secs(1)), 0);
        assert_eq!(Time::from_secs(2).saturating_since(Time::from_secs(1)), SEC);
    }

    #[test]
    fn tick_index_boundaries() {
        assert_eq!(Time::ZERO.tick_index(), 0);
        assert_eq!(Time::from_nanos(TICK_NS - 1).tick_index(), 0);
        assert_eq!(Time::from_nanos(TICK_NS).tick_index(), 1);
    }

    #[test]
    fn align_down_is_idempotent() {
        let t = Time::from_nanos(10 * MILLISEC + 123);
        let a = t.align_down(4 * MILLISEC);
        assert_eq!(a.as_nanos(), 8 * MILLISEC);
        assert_eq!(a.align_down(4 * MILLISEC), a);
    }

    #[test]
    fn min_max() {
        let a = Time::from_nanos(1);
        let b = Time::from_nanos(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_renders_seconds() {
        assert_eq!(format!("{}", Time::from_millis(1500)), "1.500000s");
    }
}
