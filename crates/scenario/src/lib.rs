//! The scenario layer: string-keyed registries and declarative scenarios.
//!
//! Everything the figure binaries hard-wire — which machine, which
//! scheduling policy with which parameters, which governor, which
//! workload at which size — is addressable here by short strings:
//!
//! * machines — [`machine()`]: `5218`, `6130-2`, `e7-8870` (alias `e7`,
//!   `i80`), …;
//! * policies — [`policy()`]: `cfs`, `nest`, `smove`, with overrides
//!   like `nest:spin=off,r_impatient=3`;
//! * governors — [`governor()`]: `performance`, `schedutil` (aliases
//!   `perf`, `sched`);
//! * workloads — [`parse_workload`]: `configure:gdb`,
//!   `schbench:mt=4,w=4`, `server:nginx,c=50`, and `+` for
//!   multi-application launches.
//!
//! A [`Scenario`] bundles one of each with a seed, run count, and
//! horizon, canonicalizes the strings, and exposes a stable
//! [`identity`](Scenario::identity) string the harness uses as its cache
//! key. Every lookup returns a typed [`ScenarioError`] listing the valid
//! entries — the registries never panic on user input.
//!
//! Determinism note: registries resolve to the *identical* structs the
//! hand-wired figure binaries always built (same machine `name` fields,
//! same `PolicyKind` variants), so per-cell seeds — which hash those
//! names — are unchanged and registry-built figures stay byte-identical.

#![deny(missing_docs)]

pub mod error;
pub mod faults;
pub mod governor;
pub mod machine;
pub mod policy;
pub mod scenario;
pub mod spec;
pub mod workload;

pub use error::ScenarioError;
pub use faults::{canonical_faults, faults};
pub use governor::{canonical_governor, governor, governor_entries, governor_keys};
pub use machine::{
    canonical_machine, machine, machine_entries, machine_keys, paper_machine_keys, MachineEntry,
};
pub use policy::{canonical_policy, policy, policy_entries, policy_keys, policy_spec_of};
pub use scenario::{Scenario, DEFAULT_HORIZON_S, DEFAULT_RUNS, DEFAULT_SEED};
pub use workload::{
    canonical_workload, parse_workload, suite_members, workload_entries, workload_suites,
    ServerKind, WorkloadSpec,
};
