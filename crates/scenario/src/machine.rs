//! The machine registry: short keys for the Table 2/3 presets.
//!
//! Keys are the socket-count-qualified model numbers the paper uses in
//! its figure captions (`6130-2`, `e7-8870`, …), with a few convenience
//! aliases (`e7`, `i80` for the 160-thread/80-physical-core E7-8870 v4,
//! `amd` for the Ryzen). Lookups resolve to the *identical*
//! [`MachineSpec`] structs the figure binaries always used — the specs'
//! `name` fields feed the per-cell seed derivation, so registry-built
//! experiments reproduce hand-wired ones bit for bit.

use nest_topology::{presets, MachineSpec};

use crate::error::ScenarioError;

/// One machine registry entry.
pub struct MachineEntry {
    /// Canonical registry key (e.g. `"6130-2"`).
    pub key: &'static str,
    /// Accepted aliases (e.g. `"e7"`, `"i80"`).
    pub aliases: &'static [&'static str],
    /// One-line description for `nest-sim list`.
    pub summary: &'static str,
    ctor: fn() -> MachineSpec,
}

impl MachineEntry {
    /// Builds the preset this entry names.
    pub fn build(&self) -> MachineSpec {
        (self.ctor)()
    }
}

fn m6130_2() -> MachineSpec {
    presets::xeon_6130(2)
}

fn m6130_4() -> MachineSpec {
    presets::xeon_6130(4)
}

/// Every machine registry entry, in Table 2 order followed by the §5.6
/// mono-socket machines.
pub fn machine_entries() -> Vec<MachineEntry> {
    vec![
        MachineEntry {
            key: "6130-2",
            aliases: &[],
            summary: "2-socket Intel Xeon Gold 6130 (Skylake), 64 hardware threads",
            ctor: m6130_2,
        },
        MachineEntry {
            key: "6130-4",
            aliases: &[],
            summary: "4-socket Intel Xeon Gold 6130 (Skylake), 128 hardware threads",
            ctor: m6130_4,
        },
        MachineEntry {
            key: "5218",
            aliases: &[],
            summary: "2-socket Intel Xeon Gold 5218 (Cascade Lake), 64 hardware threads",
            ctor: presets::xeon_5218,
        },
        MachineEntry {
            key: "e7-8870",
            aliases: &["e7", "i80"],
            summary: "4-socket Intel Xeon E7-8870 v4 (Broadwell), 160 hardware threads",
            ctor: presets::e7_8870_v4,
        },
        MachineEntry {
            key: "5220",
            aliases: &[],
            summary: "mono-socket Intel Xeon 5220 (Cascade Lake), 36 hardware threads",
            ctor: presets::xeon_5220,
        },
        MachineEntry {
            key: "4650g",
            aliases: &["amd"],
            summary: "mono-socket AMD Ryzen 5 PRO 4650G (Zen 2), 12 hardware threads",
            ctor: presets::amd_4650g,
        },
    ]
}

/// Every canonical machine key, registry order.
pub fn machine_keys() -> Vec<&'static str> {
    machine_entries().iter().map(|e| e.key).collect()
}

/// The four Table 2 machines, in the order the paper's figures sweep them.
pub fn paper_machine_keys() -> [&'static str; 4] {
    ["6130-2", "6130-4", "5218", "e7-8870"]
}

/// Resolves `name` (key or alias, case-insensitive) to its canonical key.
pub fn canonical_machine(name: &str) -> Result<&'static str, ScenarioError> {
    let wanted = name.trim().to_ascii_lowercase();
    for e in machine_entries() {
        if e.key == wanted || e.aliases.contains(&wanted.as_str()) {
            return Ok(e.key);
        }
    }
    Err(ScenarioError::UnknownEntry {
        kind: "machine",
        name: name.to_string(),
        valid: machine_keys().iter().map(|k| k.to_string()).collect(),
    })
}

/// Resolves `name` to its [`MachineSpec`].
pub fn machine(name: &str) -> Result<MachineSpec, ScenarioError> {
    let key = canonical_machine(name)?;
    Ok(machine_entries()
        .into_iter()
        .find(|e| e.key == key)
        .expect("canonical key is registered")
        .build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_resolve_to_the_preset_structs() {
        // The spec names feed seed derivation; pin them exactly.
        let expect = [
            ("6130-2", "64-core Intel 6130"),
            ("6130-4", "128-core Intel 6130"),
            ("5218", "64-core Intel 5218"),
            ("e7-8870", "160-core Intel E7-8870 v4"),
            ("5220", "36-core Intel 5220"),
            ("4650g", "12-core AMD 4650G"),
        ];
        for (key, name) in expect {
            assert_eq!(machine(key).unwrap().name, name);
        }
    }

    #[test]
    fn aliases_and_case_fold() {
        assert_eq!(canonical_machine("e7").unwrap(), "e7-8870");
        assert_eq!(canonical_machine("i80").unwrap(), "e7-8870");
        assert_eq!(canonical_machine("AMD").unwrap(), "4650g");
        assert_eq!(canonical_machine(" 5218 ").unwrap(), "5218");
    }

    #[test]
    fn unknown_machine_lists_valid_keys() {
        let e = machine("i81").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("unknown machine"), "{msg}");
        for key in machine_keys() {
            assert!(msg.contains(key), "{msg} missing {key}");
        }
    }

    #[test]
    fn paper_order_matches_presets() {
        let from_registry: Vec<String> = paper_machine_keys()
            .iter()
            .map(|k| machine(k).unwrap().name.to_string())
            .collect();
        let from_presets: Vec<String> = presets::paper_machines()
            .iter()
            .map(|m| m.name.to_string())
            .collect();
        assert_eq!(from_registry, from_presets);
    }
}
