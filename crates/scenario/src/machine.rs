//! The machine registry: short keys for the Table 2/3 presets.
//!
//! Keys are the socket-count-qualified model numbers the paper uses in
//! its figure captions (`6130-2`, `e7-8870`, …), with a few convenience
//! aliases (`e7`, `i80` for the 160-thread/80-physical-core E7-8870 v4,
//! `amd` for the Ryzen). Lookups resolve to the *identical*
//! [`MachineSpec`] structs the figure binaries always used — the specs'
//! `name` fields feed the per-cell seed derivation, so registry-built
//! experiments reproduce hand-wired ones bit for bit.

use nest_topology::{presets, MachineSpec, NumaKind};

use crate::error::ScenarioError;

/// The grammar hint listed alongside the preset keys in error messages.
pub const SYNTH_GRAMMAR: &str = "synth:sockets=S,ccx=C,cores=N[,smt=2][,numa=ring]";

/// Parses a `synth:` machine string into its [`MachineSpec`].
///
/// The grammar is `synth:sockets=S,ccx=C,cores=N[,smt=1|2][,numa=flat|ring]`
/// with the three counts mandatory and order-insensitive. The returned
/// spec's `name` is the canonical identity string (counts in
/// sockets/ccx/cores order, defaults elided), so every way of writing the
/// same shape hashes to the same harness seeds.
fn parse_synth(spec: &str) -> Result<MachineSpec, ScenarioError> {
    let body = spec
        .strip_prefix("synth:")
        .expect("caller checked the prefix");
    let malformed = |reason: String| ScenarioError::MalformedSpec {
        spec: spec.to_string(),
        reason,
    };
    let int = |param: &str, value: &str| -> Result<usize, ScenarioError> {
        match value.parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(ScenarioError::BadValue {
                param: param.to_string(),
                value: value.to_string(),
                expected: "a positive integer",
            }),
        }
    };
    let (mut sockets, mut ccx, mut cores) = (None, None, None);
    let mut smt = 1;
    let mut numa = NumaKind::Flat;
    for part in body.split(',') {
        let Some((k, v)) = part.split_once('=') else {
            return Err(malformed(format!("\"{part}\" is not a key=value pair")));
        };
        let (k, v) = (k.trim(), v.trim());
        match k {
            "sockets" => sockets = Some(int(k, v)?),
            "ccx" => ccx = Some(int(k, v)?),
            "cores" => cores = Some(int(k, v)?),
            "smt" => {
                smt = int(k, v)?;
                if smt > 2 {
                    return Err(ScenarioError::BadValue {
                        param: "smt".to_string(),
                        value: v.to_string(),
                        expected: "1 or 2",
                    });
                }
            }
            "numa" => {
                numa = match v {
                    "flat" => NumaKind::Flat,
                    "ring" => NumaKind::Ring,
                    _ => {
                        return Err(ScenarioError::BadValue {
                            param: "numa".to_string(),
                            value: v.to_string(),
                            expected: "flat or ring",
                        })
                    }
                };
            }
            _ => {
                return Err(ScenarioError::UnknownParam {
                    kind: "machine",
                    entry: "synth".to_string(),
                    param: k.to_string(),
                    valid: ["sockets", "ccx", "cores", "smt", "numa"]
                        .iter()
                        .map(|p| p.to_string())
                        .collect(),
                })
            }
        }
    }
    let sockets = sockets.ok_or_else(|| malformed("missing \"sockets=\"".to_string()))?;
    let ccx = ccx.ok_or_else(|| malformed("missing \"ccx=\"".to_string()))?;
    let cores = cores.ok_or_else(|| malformed("missing \"cores=\"".to_string()))?;
    Ok(presets::synth(sockets, ccx, cores, smt, numa))
}

/// One machine registry entry.
pub struct MachineEntry {
    /// Canonical registry key (e.g. `"6130-2"`).
    pub key: &'static str,
    /// Accepted aliases (e.g. `"e7"`, `"i80"`).
    pub aliases: &'static [&'static str],
    /// One-line description for `nest-sim list`.
    pub summary: &'static str,
    ctor: fn() -> MachineSpec,
}

impl MachineEntry {
    /// Builds the preset this entry names.
    pub fn build(&self) -> MachineSpec {
        (self.ctor)()
    }
}

fn m6130_2() -> MachineSpec {
    presets::xeon_6130(2)
}

fn m6130_4() -> MachineSpec {
    presets::xeon_6130(4)
}

/// Every machine registry entry, in Table 2 order followed by the §5.6
/// mono-socket machines.
pub fn machine_entries() -> Vec<MachineEntry> {
    vec![
        MachineEntry {
            key: "6130-2",
            aliases: &[],
            summary: "2-socket Intel Xeon Gold 6130 (Skylake), 64 hardware threads",
            ctor: m6130_2,
        },
        MachineEntry {
            key: "6130-4",
            aliases: &[],
            summary: "4-socket Intel Xeon Gold 6130 (Skylake), 128 hardware threads",
            ctor: m6130_4,
        },
        MachineEntry {
            key: "5218",
            aliases: &[],
            summary: "2-socket Intel Xeon Gold 5218 (Cascade Lake), 64 hardware threads",
            ctor: presets::xeon_5218,
        },
        MachineEntry {
            key: "e7-8870",
            aliases: &["e7", "i80"],
            summary: "4-socket Intel Xeon E7-8870 v4 (Broadwell), 160 hardware threads",
            ctor: presets::e7_8870_v4,
        },
        MachineEntry {
            key: "5220",
            aliases: &[],
            summary: "mono-socket Intel Xeon 5220 (Cascade Lake), 36 hardware threads",
            ctor: presets::xeon_5220,
        },
        MachineEntry {
            key: "4650g",
            aliases: &["amd"],
            summary: "mono-socket AMD Ryzen 5 PRO 4650G (Zen 2), 12 hardware threads",
            ctor: presets::amd_4650g,
        },
    ]
}

/// Every canonical machine key, registry order.
pub fn machine_keys() -> Vec<&'static str> {
    machine_entries().iter().map(|e| e.key).collect()
}

/// The four Table 2 machines, in the order the paper's figures sweep them.
pub fn paper_machine_keys() -> [&'static str; 4] {
    ["6130-2", "6130-4", "5218", "e7-8870"]
}

/// Resolves `name` (key, alias, or `synth:` shape, case-insensitive) to
/// its canonical identity string. For presets that is the registry key;
/// for synthetic machines it is the normalised `synth:` string (counts in
/// sockets/ccx/cores order, defaults elided).
pub fn canonical_machine(name: &str) -> Result<String, ScenarioError> {
    let wanted = name.trim().to_ascii_lowercase();
    if wanted.starts_with("synth:") {
        return Ok(parse_synth(&wanted)?.name);
    }
    for e in machine_entries() {
        if e.key == wanted || e.aliases.contains(&wanted.as_str()) {
            return Ok(e.key.to_string());
        }
    }
    Err(ScenarioError::UnknownEntry {
        kind: "machine",
        name: name.to_string(),
        valid: machine_keys()
            .iter()
            .map(|k| k.to_string())
            .chain(std::iter::once(SYNTH_GRAMMAR.to_string()))
            .collect(),
    })
}

/// Resolves `name` to its [`MachineSpec`].
pub fn machine(name: &str) -> Result<MachineSpec, ScenarioError> {
    let wanted = name.trim().to_ascii_lowercase();
    if wanted.starts_with("synth:") {
        return parse_synth(&wanted);
    }
    for e in machine_entries() {
        if e.key == wanted || e.aliases.contains(&wanted.as_str()) {
            return Ok(e.build());
        }
    }
    Err(ScenarioError::UnknownEntry {
        kind: "machine",
        name: name.to_string(),
        valid: machine_keys()
            .iter()
            .map(|k| k.to_string())
            .chain(std::iter::once(SYNTH_GRAMMAR.to_string()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_resolve_to_the_preset_structs() {
        // The spec names feed seed derivation; pin them exactly.
        let expect = [
            ("6130-2", "64-core Intel 6130"),
            ("6130-4", "128-core Intel 6130"),
            ("5218", "64-core Intel 5218"),
            ("e7-8870", "160-core Intel E7-8870 v4"),
            ("5220", "36-core Intel 5220"),
            ("4650g", "12-core AMD 4650G"),
        ];
        for (key, name) in expect {
            assert_eq!(machine(key).unwrap().name, name);
        }
    }

    #[test]
    fn aliases_and_case_fold() {
        assert_eq!(canonical_machine("e7").unwrap(), "e7-8870");
        assert_eq!(canonical_machine("i80").unwrap(), "e7-8870");
        assert_eq!(canonical_machine("AMD").unwrap(), "4650g");
        assert_eq!(canonical_machine(" 5218 ").unwrap(), "5218");
    }

    #[test]
    fn unknown_machine_lists_valid_keys() {
        let e = machine("i81").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("unknown machine"), "{msg}");
        for key in machine_keys() {
            assert!(msg.contains(key), "{msg} missing {key}");
        }
    }

    #[test]
    fn synth_grammar_builds_and_canonicalises() {
        let m = machine("synth:sockets=4,ccx=8,cores=8").unwrap();
        assert_eq!(m.n_cores(), 256);
        assert_eq!(m.sockets, 4);
        assert_eq!(m.ccx_per_socket, 8);
        assert_eq!(m.smt, 1);
        assert_eq!(m.name, "synth:sockets=4,ccx=8,cores=8");
        // Parameter order, whitespace, case, and explicit defaults all
        // normalise to the same identity string (and hence the same seeds).
        for alias in [
            "synth:cores=8,sockets=4,ccx=8",
            " SYNTH:sockets=4 , ccx=8 , cores=8 ",
            "synth:sockets=4,ccx=8,cores=8,smt=1,numa=flat",
        ] {
            assert_eq!(
                canonical_machine(alias).unwrap(),
                "synth:sockets=4,ccx=8,cores=8",
                "{alias}"
            );
        }
    }

    #[test]
    fn synth_smt_and_numa_knobs_round_trip() {
        let m = machine("synth:sockets=8,ccx=8,cores=8,smt=2,numa=ring").unwrap();
        assert_eq!(m.n_cores(), 1024);
        assert_eq!(m.smt, 2);
        assert_eq!(m.name, "synth:sockets=8,ccx=8,cores=8,smt=2,numa=ring");
        assert_eq!(canonical_machine(&m.name).unwrap(), m.name);
    }

    #[test]
    fn synth_rejects_bad_shapes() {
        for (spec, needle) in [
            ("synth:sockets=4,ccx=8", "missing \"cores=\""),
            ("synth:sockets=4,ccx=8,cores=0", "positive integer"),
            ("synth:sockets=4,ccx=8,cores=8,smt=4", "1 or 2"),
            ("synth:sockets=4,ccx=8,cores=8,numa=mesh", "flat or ring"),
            ("synth:sockets=4,ccx=8,cores=8,dies=2", "unknown parameter"),
            ("synth:sockets", "key=value"),
        ] {
            let msg = machine(spec).unwrap_err().to_string();
            assert!(msg.contains(needle), "{spec}: {msg}");
        }
    }

    #[test]
    fn unknown_machine_mentions_synth_grammar() {
        let msg = machine("i81").unwrap_err().to_string();
        assert!(msg.contains(SYNTH_GRAMMAR), "{msg}");
    }

    #[test]
    fn paper_order_matches_presets() {
        let from_registry: Vec<String> = paper_machine_keys()
            .iter()
            .map(|k| machine(k).unwrap().name.to_string())
            .collect();
        let from_presets: Vec<String> = presets::paper_machines()
            .iter()
            .map(|m| m.name.to_string())
            .collect();
        assert_eq!(from_registry, from_presets);
    }
}
