//! The declarative [`Scenario`]: one fully specified experiment.
//!
//! A scenario pins machine, policy, governor, workload, base seed, run
//! count, and horizon. Construction canonicalizes every registry string,
//! so two scenarios describe the same experiment *iff* their
//! [`identity`](Scenario::identity) strings are equal — the property the
//! harness cache and the `nest-sim` CLI rely on. Scenarios round-trip
//! through the in-tree JSON codec without loss.

use nest_core::experiment::SchedulerSetup;
use nest_core::{Governor, PolicyKind, SimConfig};
use nest_simcore::json::{self, Json};
use nest_simcore::Time;
use nest_topology::MachineSpec;
use nest_workloads::Workload;

use crate::error::ScenarioError;
use crate::faults::{canonical_faults, faults};
use crate::governor::{canonical_governor, governor};
use crate::machine::{canonical_machine, machine};
use crate::policy::{canonical_policy, policy};
use crate::workload::{canonical_workload, parse_workload, WorkloadSpec};

/// Default base seed (the repo-wide `NEST_SEED` default).
pub const DEFAULT_SEED: u64 = 42;
/// Default number of runs per scheduler setup.
pub const DEFAULT_RUNS: usize = 3;
/// Default safety horizon in simulated seconds (mirrors [`SimConfig`]).
pub const DEFAULT_HORIZON_S: u64 = 600;

/// One fully specified experiment. Fields are canonical registry
/// strings; resolution back to concrete structs cannot fail.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    machine: String,
    policy: String,
    governor: String,
    workload: String,
    seed: u64,
    runs: usize,
    horizon_s: u64,
    faults: String,
}

impl Scenario {
    /// Builds a scenario from registry strings, canonicalizing each part.
    /// Seed, runs, and horizon start at the defaults; override with
    /// [`with_seed`](Scenario::with_seed) and friends.
    pub fn parse(
        machine: &str,
        policy: &str,
        governor: &str,
        workload: &str,
    ) -> Result<Scenario, ScenarioError> {
        Ok(Scenario {
            machine: canonical_machine(machine)?,
            policy: canonical_policy(policy)?,
            governor: canonical_governor(governor)?.to_string(),
            workload: canonical_workload(workload)?,
            seed: DEFAULT_SEED,
            runs: DEFAULT_RUNS,
            horizon_s: DEFAULT_HORIZON_S,
            faults: String::new(),
        })
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Sets the run count (must be ≥ 1).
    pub fn with_runs(mut self, runs: usize) -> Scenario {
        assert!(runs > 0, "scenario needs at least one run");
        self.runs = runs;
        self
    }

    /// Sets the safety horizon in simulated seconds.
    pub fn with_horizon_s(mut self, horizon_s: u64) -> Scenario {
        self.horizon_s = horizon_s;
        self
    }

    /// Sets the fault-injection spec, canonicalizing it. The empty plan
    /// (`""` or `"faults"`) leaves the scenario — and its identity —
    /// exactly as if faults were never mentioned.
    pub fn with_faults(mut self, spec: &str) -> Result<Scenario, ScenarioError> {
        self.faults = canonical_faults(spec)?;
        Ok(self)
    }

    /// Canonical machine key (e.g. `"5218"`).
    pub fn machine(&self) -> &str {
        &self.machine
    }

    /// Canonical policy spec (e.g. `"nest:spin=off"`).
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Canonical governor key (`"performance"` or `"schedutil"`).
    pub fn governor(&self) -> &str {
        &self.governor
    }

    /// Canonical workload spec (e.g. `"configure:gdb"`).
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Base seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs per setup.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Safety horizon in simulated seconds.
    pub fn horizon_s(&self) -> u64 {
        self.horizon_s
    }

    /// Canonical fault spec (`""` when no faults are configured).
    pub fn faults(&self) -> &str {
        &self.faults
    }

    /// Resolves the machine preset.
    pub fn resolve_machine(&self) -> MachineSpec {
        machine(&self.machine).expect("canonical key resolves")
    }

    /// Resolves the policy.
    pub fn resolve_policy(&self) -> PolicyKind {
        policy(&self.policy).expect("canonical spec resolves")
    }

    /// Resolves the governor.
    pub fn resolve_governor(&self) -> Governor {
        governor(&self.governor).expect("canonical key resolves")
    }

    /// Resolves the fault plan.
    pub fn resolve_faults(&self) -> nest_faults::FaultPlan {
        faults(&self.faults).expect("canonical spec resolves")
    }

    /// Resolves the workload spec.
    pub fn workload_spec(&self) -> WorkloadSpec {
        parse_workload(&self.workload).expect("canonical spec resolves")
    }

    /// Constructs the workload.
    pub fn build_workload(&self) -> Box<dyn Workload> {
        self.workload_spec().build()
    }

    /// The `(policy, governor)` scheduler setup — the unit the paper's
    /// comparison tables row on.
    pub fn setup(&self) -> SchedulerSetup {
        SchedulerSetup::new(self.resolve_policy(), self.resolve_governor())
    }

    /// A single-run [`SimConfig`] for this scenario (base seed; callers
    /// doing multi-run statistics derive per-run seeds themselves, as the
    /// harness does).
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::new(self.resolve_machine())
            .policy(self.resolve_policy())
            .governor(self.resolve_governor())
            .seed(self.seed)
            .horizon(Time::from_secs(self.horizon_s))
            .faults(self.resolve_faults())
    }

    /// Figure-style label, e.g. `"Nest perf"`.
    pub fn label(&self) -> String {
        self.setup().label()
    }

    /// The canonical identity string. Equal identities ⇔ same experiment.
    ///
    /// `machine=5218;policy=nest;governor=performance;workload=configure:gdb;seed=42;horizon_s=600;runs=3`
    pub fn identity(&self) -> String {
        format!("{};runs={}", self.cache_scope(), self.runs)
    }

    /// The identity *minus the run count*: the prefix the harness scopes
    /// per-cell cache keys with. Runs are excluded so growing `runs` from
    /// 3 to 10 reuses the first three cells instead of recomputing them.
    pub fn cache_scope(&self) -> String {
        let mut scope = format!(
            "machine={};policy={};governor={};workload={};seed={};horizon_s={}",
            self.machine, self.policy, self.governor, self.workload, self.seed, self.horizon_s
        );
        // Appended only when faults are configured, so every fault-free
        // identity — and with it every cached artifact — is byte-for-byte
        // what it was before fault support existed.
        if !self.faults.is_empty() {
            scope.push_str(";faults=");
            scope.push_str(&self.faults);
        }
        scope
    }

    /// Serializes to the in-tree JSON codec.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("machine", Json::str(&self.machine)),
            ("policy", Json::str(&self.policy)),
            ("governor", Json::str(&self.governor)),
            ("workload", Json::str(&self.workload)),
            ("seed", Json::u64(self.seed)),
            ("runs", Json::usize(self.runs)),
            ("horizon_s", Json::u64(self.horizon_s)),
        ];
        if !self.faults.is_empty() {
            fields.push(("faults", Json::str(&self.faults)));
        }
        json::obj(fields)
    }

    /// Deserializes from the in-tree JSON codec, re-validating every
    /// registry string (hand-edited documents get registry errors, not
    /// panics downstream).
    pub fn from_json(doc: &Json) -> Result<Scenario, ScenarioError> {
        let field = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_str())
                .ok_or_else(|| ScenarioError::BadJson {
                    reason: format!("missing or non-string field \"{key}\""),
                })
        };
        let num = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| ScenarioError::BadJson {
                    reason: format!("missing or non-integer field \"{key}\""),
                })
        };
        let runs = num("runs")? as usize;
        if runs == 0 {
            return Err(ScenarioError::BadJson {
                reason: "\"runs\" must be ≥ 1".into(),
            });
        }
        let scenario = Scenario::parse(
            field("machine")?,
            field("policy")?,
            field("governor")?,
            field("workload")?,
        )?
        .with_seed(num("seed")?)
        .with_runs(runs)
        .with_horizon_s(num("horizon_s")?);
        scenario.with_faults(match doc.get("faults") {
            None => "",
            Some(v) => v.as_str().ok_or_else(|| ScenarioError::BadJson {
                reason: "non-string field \"faults\"".into(),
            })?,
        })
    }

    /// Deserializes from JSON text.
    pub fn from_json_str(text: &str) -> Result<Scenario, ScenarioError> {
        let doc = json::parse(text).map_err(|reason| ScenarioError::BadJson { reason })?;
        Scenario::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gdb_on_5218() -> Scenario {
        Scenario::parse("5218", "nest", "performance", "configure:gdb").unwrap()
    }

    #[test]
    fn construction_canonicalizes_every_part() {
        let s =
            Scenario::parse("I80", "nest:spin=on", "perf", "configure:gdb,jitter=0.25").unwrap();
        assert_eq!(s.machine(), "e7-8870");
        assert_eq!(s.policy(), "nest");
        assert_eq!(s.governor(), "performance");
        assert_eq!(s.workload(), "configure:gdb,jitter=0.25");
    }

    #[test]
    fn identity_is_stable_and_runs_scoped() {
        let s = gdb_on_5218().with_seed(7).with_runs(5).with_horizon_s(120);
        assert_eq!(
            s.identity(),
            "machine=5218;policy=nest;governor=performance;workload=configure:gdb;\
             seed=7;horizon_s=120;runs=5"
        );
        assert_eq!(
            s.cache_scope(),
            "machine=5218;policy=nest;governor=performance;workload=configure:gdb;\
             seed=7;horizon_s=120"
        );
        // Equivalent spellings share one identity.
        let t = Scenario::parse("5218", "nest:spin=on", "perf", "configure:gdb")
            .unwrap()
            .with_seed(7)
            .with_runs(5)
            .with_horizon_s(120);
        assert_eq!(s.identity(), t.identity());
    }

    #[test]
    fn golden_identities_for_the_paper_standard_setups() {
        // The four (policy × governor) setups of SchedulerSetup::paper_set,
        // pinned as golden strings: these are cache-key prefixes, so any
        // drift silently orphans every cached result.
        let golden = [
            ("cfs", "schedutil",
             "machine=5218;policy=cfs;governor=schedutil;workload=configure:gdb;seed=42;horizon_s=600;runs=3"),
            ("cfs", "performance",
             "machine=5218;policy=cfs;governor=performance;workload=configure:gdb;seed=42;horizon_s=600;runs=3"),
            ("nest", "schedutil",
             "machine=5218;policy=nest;governor=schedutil;workload=configure:gdb;seed=42;horizon_s=600;runs=3"),
            ("nest", "performance",
             "machine=5218;policy=nest;governor=performance;workload=configure:gdb;seed=42;horizon_s=600;runs=3"),
        ];
        for (policy, governor, want) in golden {
            let s = Scenario::parse("5218", policy, governor, "configure:gdb").unwrap();
            assert_eq!(s.identity(), want);
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let s = Scenario::parse(
            "6130-4",
            "nest:r_impatient=3",
            "schedutil",
            "schbench:mt=4,w=4",
        )
        .unwrap()
        .with_seed(1234)
        .with_runs(10)
        .with_horizon_s(90);
        let back = Scenario::from_json_str(&s.to_json().to_pretty()).unwrap();
        assert_eq!(s, back);
        assert_eq!(s.identity(), back.identity());
    }

    #[test]
    fn from_json_revalidates() {
        let bad = r#"{"machine": "i81", "policy": "cfs", "governor": "schedutil",
                      "workload": "hackbench", "seed": 1, "runs": 1, "horizon_s": 600}"#;
        let msg = Scenario::from_json_str(bad).unwrap_err().to_string();
        assert!(msg.contains("unknown machine"), "{msg}");
        let missing = r#"{"machine": "5218"}"#;
        assert!(Scenario::from_json_str(missing).is_err());
        let zero_runs = r#"{"machine": "5218", "policy": "cfs", "governor": "schedutil",
                            "workload": "hackbench", "seed": 1, "runs": 0, "horizon_s": 600}"#;
        assert!(Scenario::from_json_str(zero_runs).is_err());
    }

    #[test]
    fn fault_free_identity_is_untouched_by_fault_support() {
        let s = gdb_on_5218();
        let t = gdb_on_5218().with_faults("").unwrap();
        let u = gdb_on_5218().with_faults("faults").unwrap();
        assert_eq!(s.identity(), t.identity());
        assert_eq!(s.identity(), u.identity());
        assert!(!s.identity().contains("faults"));
        assert!(!s.to_json().to_pretty().contains("faults"));
    }

    #[test]
    fn faulted_identity_appends_the_canonical_spec() {
        let s = gdb_on_5218()
            .with_faults("faults:jitter=100us,hotplug=2@50ms")
            .unwrap();
        assert_eq!(
            s.identity(),
            "machine=5218;policy=nest;governor=performance;workload=configure:gdb;\
             seed=42;horizon_s=600;faults=hotplug=2@50ms,jitter=100us;runs=3"
        );
        assert!(s
            .cache_scope()
            .ends_with("faults=hotplug=2@50ms,jitter=100us"));
        // Round-trips through JSON.
        let back = Scenario::from_json_str(&s.to_json().to_pretty()).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.faults(), "hotplug=2@50ms,jitter=100us");
        // And resolves to a real plan wired into the sim config.
        assert_eq!(s.resolve_faults().hotplug.unwrap().count, 2);
        assert_eq!(s.sim_config().faults.jitter_ns, 100_000);
    }

    #[test]
    fn bad_fault_specs_are_registry_errors() {
        assert!(gdb_on_5218().with_faults("faults:hotplug=0@1ms").is_err());
        assert!(gdb_on_5218().with_faults("faults:bogus=1").is_err());
    }

    #[test]
    fn resolution_matches_hand_wiring() {
        let s = gdb_on_5218();
        assert_eq!(s.resolve_machine().name, "64-core Intel 5218");
        // The setup identity is the seed-derivation coordinate; it must
        // equal the hand-wired SchedulerSetup's exactly.
        let hand = SchedulerSetup::new(PolicyKind::Nest, Governor::Performance);
        assert_eq!(s.setup().identity(), hand.identity());
        assert_eq!(s.label(), "Nest perf");
        let cfg = s.sim_config();
        assert_eq!(cfg.seed, DEFAULT_SEED);
        assert_eq!(cfg.horizon, Time::from_secs(600));
    }

    #[test]
    fn sim_config_runs_the_scenario() {
        let s = Scenario::parse("5218", "nest", "perf", "configure:gdb")
            .unwrap()
            .with_horizon_s(120);
        let r = nest_core::run_once(&s.sim_config(), s.build_workload().as_ref());
        assert!(r.time_s > 0.0);
        assert!(!r.hit_horizon);
    }
}
