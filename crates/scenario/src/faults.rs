//! The fault registry: `faults:` spec strings for [`Scenario`]s.
//!
//! The grammar is [`FaultPlan::parse`]'s — `hotplug=N@TIME[:DUR]`,
//! `throttle=sK:F[@TIME[:DUR]]` (several joined with `+`),
//! `jitter=TIME`, `stragglers=N[@TIME[:DUR]]` — wrapped here so lookups
//! fail with a [`ScenarioError`] like every other registry, and so
//! specs canonicalize to the fixed clause order the cache keys on.
//!
//! [`Scenario`]: crate::Scenario

use nest_faults::FaultPlan;

use crate::error::ScenarioError;

/// Parses a fault spec (`faults:hotplug=2@50ms,throttle=s0:0.8`, the
/// bare clause list, or `""`/`"faults"` for the empty plan).
pub fn faults(spec: &str) -> Result<FaultPlan, ScenarioError> {
    FaultPlan::parse(spec).map_err(|e| ScenarioError::MalformedSpec {
        spec: spec.to_string(),
        reason: e.to_string(),
    })
}

/// Canonicalizes a fault spec to its fixed-order clause list; the empty
/// plan canonicalizes to `""`.
pub fn canonical_faults(spec: &str) -> Result<String, ScenarioError> {
    Ok(faults(spec)?.canonical())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_orders_clauses() {
        assert_eq!(
            canonical_faults("faults:jitter=100us,hotplug=2@50ms").unwrap(),
            "hotplug=2@50ms,jitter=100us"
        );
        assert_eq!(canonical_faults("").unwrap(), "");
        assert_eq!(canonical_faults("faults").unwrap(), "");
    }

    #[test]
    fn errors_are_scenario_errors() {
        let msg = faults("faults:hotplug=zero@1ms").unwrap_err().to_string();
        assert!(msg.contains("malformed spec"), "{msg}");
    }

    #[test]
    fn resolves_to_the_engine_plan() {
        let plan = faults("faults:hotplug=2@50ms,throttle=s0:0.8").unwrap();
        assert_eq!(plan.hotplug.as_ref().unwrap().count, 2);
        assert_eq!(plan.throttle.len(), 1);
    }
}
