//! The workload registry: all eight benchmark suites, with members and
//! sizing knobs, behind one spec grammar.
//!
//! * member suites — `configure:gdb`, `dacapo:h2`, `nas:bt.C.x`,
//!   `phoronix:zstd compression 7`: the member selects a named spec, and
//!   (except for phoronix) `key=value` knobs override its fields;
//! * parametric suites — `hackbench`, `schbench`, `serve`: no member,
//!   knobs override the suite defaults (`schbench:mt=4,w=4`,
//!   `serve:rate=500,dist=lognorm,slo=2ms`);
//! * servers — `server:nginx,c=50` (`c` for the open-loop concurrency of
//!   nginx/apache; `leveldb`/`redis` are fixed);
//! * combinations — `+` joins independent workloads launched together:
//!   `phoronix:zstd compression 7+phoronix:libgav1 4`;
//! * fleets — a leading `fleet:` part routes the remaining parts' serve
//!   streams across N independent host simulations with retry/timeout/
//!   hedging and failover: `fleet:hosts=4,lb=warmth,retry=2+serve:rate=500`.
//!
//! Canonical strings list only knobs that differ from the member/suite
//! base, in declaration order, so equivalent specs share one cache key.

use nest_serve::{format_duration, parse_duration, ArrivalKind, ServeSpec, ServiceDist};
use nest_workloads::{
    configure, dacapo, hackbench::HackbenchSpec, nas, phoronix, schbench::SchbenchSpec, server,
    FleetLoad, FleetSpec, Multi, ServeLoad, Workload,
};

use crate::error::ScenarioError;
use crate::spec::{fmt_f64, parse_f64, parse_spec, parse_u32, parse_u64, ParsedSpec};

/// Every suite key, registry order.
pub fn workload_suites() -> Vec<&'static str> {
    vec![
        "configure",
        "dacapo",
        "nas",
        "phoronix",
        "hackbench",
        "schbench",
        "serve",
        "server",
        "fleet",
    ]
}

/// `(suite key, summary)` pairs for `nest-sim list`.
pub fn workload_entries() -> Vec<(&'static str, String)> {
    vec![
        (
            "configure",
            format!(
                "software-configuration scripts (§5.2); members: {}; knobs: tests, \
                 shell_ms, test_ms, jitter, chain_prob, burst_prob",
                suite_members("configure").unwrap().join(", ")
            ),
        ),
        (
            "dacapo",
            format!(
                "DaCapo Java applications (§5.3); members: {}; knobs: workers, chunk_ms, \
                 sleep_ms, work_ms, bg, jitter, burst_chunks, tokens",
                suite_members("dacapo").unwrap().join(", ")
            ),
        ),
        (
            "nas",
            format!(
                "NAS Parallel Benchmarks (§5.4); members: {}; knobs: iters, chunk_ms, \
                 jitter, setup_ms",
                suite_members("nas").unwrap().join(", ")
            ),
        ),
        (
            "phoronix",
            format!(
                "Figure 13 / Table 5 multicore tests (§5.5), no knobs; members: {}",
                suite_members("phoronix").unwrap().join(", ")
            ),
        ),
        (
            "hackbench",
            "scheduler message-churn stress (§5.6); knobs: g, fan, loops, msg_cycles".to_string(),
        ),
        (
            "schbench",
            "wakeup-latency microbenchmark (§5.6); knobs: mt, w, requests, think_ms".to_string(),
        ),
        (
            "serve",
            "open-loop request serving with a tail-latency/SLO lens; knobs: rate, \
             requests, dist, service, sigma, heavy, p_heavy, fanout, arrival, burst, \
             on, off, ramp, amp, slo"
                .to_string(),
        ),
        (
            "server",
            "request/worker server tests (§5.6); members: nginx, apache (knob: c), \
             leveldb, redis"
                .to_string(),
        ),
        (
            "fleet",
            "multi-host front-end prefix (fleet:<knobs>+<workload with serve parts>); \
             knobs: hosts, lb (rr|leastq|warmth), retry, timeout, backoff, cap, \
             hedge (off|p95|<dur>), shed, hostdown=K@T[:D], degrade=hK:F@T[:D]"
                .to_string(),
        ),
    ]
}

/// The member names of a member-selecting suite (`configure`, `dacapo`,
/// `nas`, `phoronix`, `server`).
pub fn suite_members(suite: &str) -> Option<Vec<String>> {
    match suite {
        "configure" => Some(
            configure::all_specs()
                .iter()
                .map(|s| s.name.to_string())
                .collect(),
        ),
        "dacapo" => Some(
            dacapo::all_specs()
                .iter()
                .map(|s| s.name.to_string())
                .collect(),
        ),
        "nas" => Some(
            nas::all_specs()
                .iter()
                .map(|s| s.name.to_string())
                .collect(),
        ),
        "phoronix" => Some(
            phoronix::figure13_specs()
                .iter()
                .map(|s| s.name.clone())
                .collect(),
        ),
        "server" => Some(
            ["nginx", "apache", "leveldb", "redis"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        _ => None,
    }
}

/// A server test: kind plus (for the open-loop pair) client concurrency.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerKind {
    /// nginx-like: many light requests (`c` = concurrency).
    Nginx(u32),
    /// apache-like: heavier requests, wider pool (`c` = concurrency).
    Apache(u32),
    /// leveldb-like key-value store (fixed sizing).
    Leveldb,
    /// redis-like nearly-serial event loop (fixed sizing).
    Redis,
}

impl ServerKind {
    fn to_spec(&self) -> server::ServerSpec {
        match self {
            ServerKind::Nginx(c) => server::ServerSpec::nginx(*c),
            ServerKind::Apache(c) => server::ServerSpec::apache(*c),
            ServerKind::Leveldb => server::ServerSpec::leveldb(),
            ServerKind::Redis => server::ServerSpec::redis(),
        }
    }
}

/// A fully resolved workload: plain data, cheap to clone into the
/// harness's per-cell factories.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// A §5.2 configure benchmark.
    Configure(configure::ConfigureSpec),
    /// A §5.3 DaCapo application.
    Dacapo(dacapo::DacapoSpec),
    /// A §5.4 NAS kernel.
    Nas(nas::NasSpec),
    /// A §5.5 Phoronix test.
    Phoronix(phoronix::PhoronixSpec),
    /// The §5.6 hackbench stress.
    Hackbench(HackbenchSpec),
    /// The §5.6 schbench microbenchmark.
    Schbench(SchbenchSpec),
    /// An open-loop serving stream with a tail-latency SLO.
    Serve(ServeSpec),
    /// A §5.6 server test.
    Server(ServerKind),
    /// Several workloads launched together (`+`).
    Multi(Vec<WorkloadSpec>),
    /// A multi-host fleet front-end routing the inner workload's serve
    /// streams (`fleet:<knobs>+<inner>`).
    Fleet(FleetSpec, Box<WorkloadSpec>),
}

fn unknown_member(kind: &'static str, name: &str, suite: &str) -> ScenarioError {
    ScenarioError::UnknownEntry {
        kind,
        name: name.to_string(),
        valid: suite_members(suite).unwrap_or_default(),
    }
}

fn unknown_param(entry: &str, param: &str, valid: &[&str]) -> ScenarioError {
    ScenarioError::UnknownParam {
        kind: "workload",
        entry: entry.to_string(),
        param: param.to_string(),
        valid: valid.iter().map(|p| p.to_string()).collect(),
    }
}

fn require_member(p: &ParsedSpec, spec: &str) -> Result<String, ScenarioError> {
    p.member
        .clone()
        .ok_or_else(|| ScenarioError::MalformedSpec {
            spec: spec.trim().to_string(),
            reason: format!("{} needs a member, e.g. \"{}:<name>\"", p.head, p.head),
        })
}

const CONFIGURE_PARAMS: [&str; 6] = [
    "tests",
    "shell_ms",
    "test_ms",
    "jitter",
    "chain_prob",
    "burst_prob",
];
const DACAPO_PARAMS: [&str; 8] = [
    "workers",
    "chunk_ms",
    "sleep_ms",
    "work_ms",
    "bg",
    "jitter",
    "burst_chunks",
    "tokens",
];
const NAS_PARAMS: [&str; 4] = ["iters", "chunk_ms", "jitter", "setup_ms"];
const HACKBENCH_PARAMS: [&str; 4] = ["g", "fan", "loops", "msg_cycles"];
const SCHBENCH_PARAMS: [&str; 4] = ["mt", "w", "requests", "think_ms"];
const SERVE_PARAMS: [&str; 15] = [
    "rate", "requests", "dist", "service", "sigma", "heavy", "p_heavy", "fanout", "arrival",
    "burst", "on", "off", "ramp", "amp", "slo",
];

fn bad_value(param: &str, value: &str, expected: &'static str) -> ScenarioError {
    ScenarioError::BadValue {
        param: param.to_string(),
        value: value.to_string(),
        expected,
    }
}

fn parse_single(input: &str) -> Result<WorkloadSpec, ScenarioError> {
    let p = parse_spec("workload", input)?;
    match p.head.as_str() {
        "configure" => {
            let member = require_member(&p, input)?;
            let mut s = configure::by_name(&member)
                .ok_or_else(|| unknown_member("configure benchmark", &member, "configure"))?;
            for (k, v) in &p.params {
                match k.as_str() {
                    "tests" => s.n_tests = parse_u32(k, v)?,
                    "shell_ms" => s.shell_ms = parse_f64(k, v)?,
                    "test_ms" => s.test_ms = parse_f64(k, v)?,
                    "jitter" => s.jitter = parse_f64(k, v)?,
                    "chain_prob" => s.chain_prob = parse_f64(k, v)?,
                    "burst_prob" => s.burst_prob = parse_f64(k, v)?,
                    _ => {
                        return Err(unknown_param(
                            &format!("configure:{member}"),
                            k,
                            &CONFIGURE_PARAMS,
                        ))
                    }
                }
            }
            Ok(WorkloadSpec::Configure(s))
        }
        "dacapo" => {
            let member = require_member(&p, input)?;
            let mut s = dacapo::by_name(&member)
                .ok_or_else(|| unknown_member("dacapo application", &member, "dacapo"))?;
            for (k, v) in &p.params {
                match k.as_str() {
                    "workers" => s.workers = parse_u32(k, v)?,
                    "chunk_ms" => s.chunk_ms = parse_f64(k, v)?,
                    "sleep_ms" => s.sleep_ms = parse_f64(k, v)?,
                    "work_ms" => s.work_per_worker_ms = parse_f64(k, v)?,
                    "bg" => s.background_threads = parse_u32(k, v)?,
                    "jitter" => s.jitter = parse_f64(k, v)?,
                    "burst_chunks" => s.burst_chunks = parse_u32(k, v)?,
                    "tokens" => s.queue_tokens = parse_u32(k, v)?,
                    _ => {
                        return Err(unknown_param(
                            &format!("dacapo:{member}"),
                            k,
                            &DACAPO_PARAMS,
                        ))
                    }
                }
            }
            Ok(WorkloadSpec::Dacapo(s))
        }
        "nas" => {
            let member = require_member(&p, input)?;
            let mut s = nas::by_name(&member)
                .ok_or_else(|| unknown_member("nas kernel", &member, "nas"))?;
            for (k, v) in &p.params {
                match k.as_str() {
                    "iters" => s.iterations = parse_u32(k, v)?,
                    "chunk_ms" => s.chunk_ms_at_64 = parse_f64(k, v)?,
                    "jitter" => s.jitter = parse_f64(k, v)?,
                    "setup_ms" => s.setup_ms = parse_f64(k, v)?,
                    _ => return Err(unknown_param(&format!("nas:{member}"), k, &NAS_PARAMS)),
                }
            }
            Ok(WorkloadSpec::Nas(s))
        }
        "phoronix" => {
            let member = require_member(&p, input)?;
            let s = phoronix::by_name(&member)
                .ok_or_else(|| unknown_member("phoronix test", &member, "phoronix"))?;
            if let Some((k, _)) = p.params.first() {
                return Err(unknown_param(&format!("phoronix:{member}"), k, &[]));
            }
            Ok(WorkloadSpec::Phoronix(s))
        }
        "hackbench" => {
            if p.member.is_some() {
                return Err(ScenarioError::MalformedSpec {
                    spec: input.trim().to_string(),
                    reason: "hackbench has no members (parameters are key=value)".into(),
                });
            }
            let mut s = HackbenchSpec::default();
            for (k, v) in &p.params {
                match k.as_str() {
                    "g" => s.groups = parse_u32(k, v)?,
                    "fan" => s.fan = parse_u32(k, v)?,
                    "loops" => s.loops = parse_u32(k, v)?,
                    "msg_cycles" => s.msg_cycles = parse_u64(k, v)?,
                    _ => return Err(unknown_param("hackbench", k, &HACKBENCH_PARAMS)),
                }
            }
            Ok(WorkloadSpec::Hackbench(s))
        }
        "schbench" => {
            if p.member.is_some() {
                return Err(ScenarioError::MalformedSpec {
                    spec: input.trim().to_string(),
                    reason: "schbench has no members (parameters are key=value)".into(),
                });
            }
            let mut s = SchbenchSpec::default();
            for (k, v) in &p.params {
                match k.as_str() {
                    "mt" => s.message_threads = parse_u32(k, v)?,
                    "w" => s.workers_per_message = parse_u32(k, v)?,
                    "requests" => s.requests_per_worker = parse_u32(k, v)?,
                    "think_ms" => s.think_ms = parse_f64(k, v)?,
                    _ => return Err(unknown_param("schbench", k, &SCHBENCH_PARAMS)),
                }
            }
            Ok(WorkloadSpec::Schbench(s))
        }
        "serve" => {
            if p.member.is_some() {
                return Err(ScenarioError::MalformedSpec {
                    spec: input.trim().to_string(),
                    reason: "serve has no members (parameters are key=value)".into(),
                });
            }
            let mut s = ServeSpec::default();
            for (k, v) in &p.params {
                match k.as_str() {
                    "rate" => s.rate = parse_f64(k, v)?,
                    "requests" => s.requests = parse_u32(k, v)?,
                    "dist" => {
                        s.dist = ServiceDist::from_key(v)
                            .ok_or_else(|| bad_value(k, v, "one of det|exp|lognorm|bimodal"))?
                    }
                    "service" => s.service_ms = parse_f64(k, v)?,
                    "sigma" => s.sigma = parse_f64(k, v)?,
                    "heavy" => s.heavy_ms = parse_f64(k, v)?,
                    "p_heavy" => s.p_heavy = parse_f64(k, v)?,
                    "fanout" => s.fanout = parse_u32(k, v)?,
                    "arrival" => {
                        s.arrival = ArrivalKind::from_key(v)
                            .ok_or_else(|| bad_value(k, v, "one of poisson|onoff"))?
                    }
                    "burst" => s.burst = parse_f64(k, v)?,
                    "on" => s.on_ms = parse_f64(k, v)?,
                    "off" => s.off_ms = parse_f64(k, v)?,
                    "ramp" => s.ramp_s = parse_f64(k, v)?,
                    "amp" => s.amp = parse_f64(k, v)?,
                    "slo" => {
                        s.slo_ns = parse_duration(v)
                            .ok_or_else(|| bad_value(k, v, "a duration like 2ms"))?
                    }
                    _ => return Err(unknown_param("serve", k, &SERVE_PARAMS)),
                }
            }
            s.validate()
                .map_err(|reason| ScenarioError::MalformedSpec {
                    spec: input.trim().to_string(),
                    reason,
                })?;
            Ok(WorkloadSpec::Serve(s))
        }
        "fleet" => Err(ScenarioError::MalformedSpec {
            spec: input.trim().to_string(),
            reason: "fleet is a front-end prefix and must come first, followed by the \
                     workload it routes, e.g. \"fleet:hosts=4,lb=warmth+serve:rate=500\""
                .into(),
        }),
        "server" => {
            let member = require_member(&p, input)?;
            let mut c: Option<u32> = None;
            for (k, v) in &p.params {
                match k.as_str() {
                    "c" => c = Some(parse_u32(k, v)?),
                    _ => return Err(unknown_param(&format!("server:{member}"), k, &["c"])),
                }
            }
            let kind = match member.as_str() {
                "nginx" | "apache" => {
                    let c = c.ok_or_else(|| ScenarioError::MalformedSpec {
                        spec: input.trim().to_string(),
                        reason: format!("server:{member} requires c=<concurrency>"),
                    })?;
                    if member == "nginx" {
                        ServerKind::Nginx(c)
                    } else {
                        ServerKind::Apache(c)
                    }
                }
                "leveldb" | "redis" => {
                    if c.is_some() {
                        return Err(unknown_param(&format!("server:{member}"), "c", &[]));
                    }
                    if member == "leveldb" {
                        ServerKind::Leveldb
                    } else {
                        ServerKind::Redis
                    }
                }
                _ => return Err(unknown_member("server test", &member, "server")),
            };
            Ok(WorkloadSpec::Server(kind))
        }
        _ => Err(ScenarioError::UnknownEntry {
            kind: "workload suite",
            name: p.head,
            valid: workload_suites().iter().map(|k| k.to_string()).collect(),
        }),
    }
}

/// Parses a workload spec string; `+` at the top level combines several
/// workloads into a [`WorkloadSpec::Multi`]. A leading `fleet:` part
/// wraps the remaining parts into a [`WorkloadSpec::Fleet`].
pub fn parse_workload(input: &str) -> Result<WorkloadSpec, ScenarioError> {
    let parts: Vec<&str> = input.split('+').collect();
    if let Ok(p) = parse_spec("workload", parts[0]) {
        if p.head == "fleet" && !parts[1..].is_empty() {
            return parse_fleet(input, &p, &parts[1..]);
        }
    }
    if parts.len() == 1 {
        return parse_single(input);
    }
    let specs = parts
        .iter()
        .map(|part| parse_single(part))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(WorkloadSpec::Multi(specs))
}

/// Parses the `fleet:` front-end: `p` is the already-parsed first part,
/// `rest` the `+`-separated parts it routes.
fn parse_fleet(input: &str, p: &ParsedSpec, rest: &[&str]) -> Result<WorkloadSpec, ScenarioError> {
    let malformed = |reason: String| ScenarioError::MalformedSpec {
        spec: input.trim().to_string(),
        reason,
    };
    if p.member.is_some() {
        return Err(malformed(
            "fleet has no members (parameters are key=value)".into(),
        ));
    }
    let spec = FleetSpec::from_params(&p.params).map_err(|e| malformed(e.to_string()))?;
    let inner = if rest.len() == 1 {
        parse_single(rest[0])?
    } else {
        WorkloadSpec::Multi(
            rest.iter()
                .map(|part| parse_single(part))
                .collect::<Result<Vec<_>, _>>()?,
        )
    };
    if !inner.has_serve() {
        return Err(malformed(
            "a fleet needs at least one serve part to route, e.g. \
             \"fleet:hosts=4+serve:rate=500\""
                .into(),
        ));
    }
    Ok(WorkloadSpec::Fleet(spec, Box::new(inner)))
}

/// Canonicalizes a workload spec string (parse, normalize, re-render).
pub fn canonical_workload(input: &str) -> Result<String, ScenarioError> {
    Ok(parse_workload(input)?.canonical())
}

fn push_if_ne_f64(parts: &mut Vec<String>, key: &str, v: f64, base: f64) {
    if v != base {
        parts.push(format!("{key}={}", fmt_f64(v)));
    }
}

fn push_if_ne_u32(parts: &mut Vec<String>, key: &str, v: u32, base: u32) {
    if v != base {
        parts.push(format!("{key}={v}"));
    }
}

fn render(head: String, parts: Vec<String>) -> String {
    if parts.is_empty() {
        head
    } else {
        format!("{head},{}", parts.join(","))
    }
}

/// Like [`render`], but for the member-less suites, whose first knob
/// attaches with `:` rather than `,`.
fn render_bare(head: &str, parts: Vec<String>) -> String {
    if parts.is_empty() {
        head.to_string()
    } else {
        format!("{head}:{}", parts.join(","))
    }
}

impl WorkloadSpec {
    /// The canonical spec string: suite key, member, and only the knobs
    /// that differ from the member/suite base, in declaration order.
    pub fn canonical(&self) -> String {
        match self {
            WorkloadSpec::Configure(s) => {
                let base = configure::by_name(s.name).expect("member came from the registry");
                let mut parts = Vec::new();
                push_if_ne_u32(&mut parts, "tests", s.n_tests, base.n_tests);
                push_if_ne_f64(&mut parts, "shell_ms", s.shell_ms, base.shell_ms);
                push_if_ne_f64(&mut parts, "test_ms", s.test_ms, base.test_ms);
                push_if_ne_f64(&mut parts, "jitter", s.jitter, base.jitter);
                push_if_ne_f64(&mut parts, "chain_prob", s.chain_prob, base.chain_prob);
                push_if_ne_f64(&mut parts, "burst_prob", s.burst_prob, base.burst_prob);
                render(format!("configure:{}", s.name), parts)
            }
            WorkloadSpec::Dacapo(s) => {
                let base = dacapo::by_name(s.name).expect("member came from the registry");
                let mut parts = Vec::new();
                push_if_ne_u32(&mut parts, "workers", s.workers, base.workers);
                push_if_ne_f64(&mut parts, "chunk_ms", s.chunk_ms, base.chunk_ms);
                push_if_ne_f64(&mut parts, "sleep_ms", s.sleep_ms, base.sleep_ms);
                push_if_ne_f64(
                    &mut parts,
                    "work_ms",
                    s.work_per_worker_ms,
                    base.work_per_worker_ms,
                );
                push_if_ne_u32(
                    &mut parts,
                    "bg",
                    s.background_threads,
                    base.background_threads,
                );
                push_if_ne_f64(&mut parts, "jitter", s.jitter, base.jitter);
                push_if_ne_u32(
                    &mut parts,
                    "burst_chunks",
                    s.burst_chunks,
                    base.burst_chunks,
                );
                push_if_ne_u32(&mut parts, "tokens", s.queue_tokens, base.queue_tokens);
                render(format!("dacapo:{}", s.name), parts)
            }
            WorkloadSpec::Nas(s) => {
                let base = nas::by_name(s.name).expect("member came from the registry");
                let mut parts = Vec::new();
                push_if_ne_u32(&mut parts, "iters", s.iterations, base.iterations);
                push_if_ne_f64(
                    &mut parts,
                    "chunk_ms",
                    s.chunk_ms_at_64,
                    base.chunk_ms_at_64,
                );
                push_if_ne_f64(&mut parts, "jitter", s.jitter, base.jitter);
                push_if_ne_f64(&mut parts, "setup_ms", s.setup_ms, base.setup_ms);
                render(format!("nas:{}", s.name), parts)
            }
            WorkloadSpec::Phoronix(s) => format!("phoronix:{}", s.name),
            WorkloadSpec::Hackbench(s) => {
                let base = HackbenchSpec::default();
                let mut parts = Vec::new();
                push_if_ne_u32(&mut parts, "g", s.groups, base.groups);
                push_if_ne_u32(&mut parts, "fan", s.fan, base.fan);
                push_if_ne_u32(&mut parts, "loops", s.loops, base.loops);
                if s.msg_cycles != base.msg_cycles {
                    parts.push(format!("msg_cycles={}", s.msg_cycles));
                }
                render_bare("hackbench", parts)
            }
            WorkloadSpec::Schbench(s) => {
                let base = SchbenchSpec::default();
                let mut parts = Vec::new();
                push_if_ne_u32(&mut parts, "mt", s.message_threads, base.message_threads);
                push_if_ne_u32(
                    &mut parts,
                    "w",
                    s.workers_per_message,
                    base.workers_per_message,
                );
                push_if_ne_u32(
                    &mut parts,
                    "requests",
                    s.requests_per_worker,
                    base.requests_per_worker,
                );
                push_if_ne_f64(&mut parts, "think_ms", s.think_ms, base.think_ms);
                render_bare("schbench", parts)
            }
            WorkloadSpec::Serve(s) => {
                let base = ServeSpec::default();
                let mut parts = Vec::new();
                push_if_ne_f64(&mut parts, "rate", s.rate, base.rate);
                push_if_ne_u32(&mut parts, "requests", s.requests, base.requests);
                if s.dist != base.dist {
                    parts.push(format!("dist={}", s.dist.key()));
                }
                push_if_ne_f64(&mut parts, "service", s.service_ms, base.service_ms);
                push_if_ne_f64(&mut parts, "sigma", s.sigma, base.sigma);
                push_if_ne_f64(&mut parts, "heavy", s.heavy_ms, base.heavy_ms);
                push_if_ne_f64(&mut parts, "p_heavy", s.p_heavy, base.p_heavy);
                push_if_ne_u32(&mut parts, "fanout", s.fanout, base.fanout);
                if s.arrival != base.arrival {
                    parts.push(format!("arrival={}", s.arrival.key()));
                }
                push_if_ne_f64(&mut parts, "burst", s.burst, base.burst);
                push_if_ne_f64(&mut parts, "on", s.on_ms, base.on_ms);
                push_if_ne_f64(&mut parts, "off", s.off_ms, base.off_ms);
                push_if_ne_f64(&mut parts, "ramp", s.ramp_s, base.ramp_s);
                push_if_ne_f64(&mut parts, "amp", s.amp, base.amp);
                if s.slo_ns != base.slo_ns {
                    parts.push(format!("slo={}", format_duration(s.slo_ns)));
                }
                render_bare("serve", parts)
            }
            WorkloadSpec::Server(kind) => match kind {
                ServerKind::Nginx(c) => format!("server:nginx,c={c}"),
                ServerKind::Apache(c) => format!("server:apache,c={c}"),
                ServerKind::Leveldb => "server:leveldb".to_string(),
                ServerKind::Redis => "server:redis".to_string(),
            },
            WorkloadSpec::Multi(parts) => parts
                .iter()
                .map(|p| p.canonical())
                .collect::<Vec<_>>()
                .join("+"),
            WorkloadSpec::Fleet(f, inner) => {
                format!("{}+{}", f.canonical(), inner.canonical())
            }
        }
    }

    /// Whether this spec (or any part of it) carries an open-loop serve
    /// stream the fleet balancer could route.
    fn has_serve(&self) -> bool {
        match self {
            WorkloadSpec::Serve(_) => true,
            WorkloadSpec::Multi(parts) => parts.iter().any(|p| p.has_serve()),
            WorkloadSpec::Fleet(_, inner) => inner.has_serve(),
            _ => false,
        }
    }

    /// Constructs the workload. Cheap (constructors store specs; tasks
    /// are built later, inside the engine), so the harness calls this
    /// once per cell from a cloned spec.
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Configure(s) => Box::new(configure::Configure::new(s.clone())),
            WorkloadSpec::Dacapo(s) => Box::new(dacapo::Dacapo::new(s.clone())),
            WorkloadSpec::Nas(s) => Box::new(nas::Nas::new(s.clone())),
            WorkloadSpec::Phoronix(s) => Box::new(phoronix::Phoronix::new(s.clone())),
            WorkloadSpec::Hackbench(s) => {
                Box::new(nest_workloads::hackbench::Hackbench::new(s.clone()))
            }
            WorkloadSpec::Schbench(s) => {
                Box::new(nest_workloads::schbench::Schbench::new(s.clone()))
            }
            WorkloadSpec::Serve(s) => Box::new(ServeLoad::new(s.clone())),
            WorkloadSpec::Server(kind) => Box::new(server::Server::new(kind.to_spec())),
            WorkloadSpec::Multi(parts) => {
                Box::new(Multi::new(parts.iter().map(|p| p.build()).collect()))
            }
            WorkloadSpec::Fleet(f, inner) => Box::new(FleetLoad::new(f.clone(), inner.build())),
        }
    }

    /// The figure name of the built workload (what seed derivation and
    /// comparison tables use), e.g. `"gdb"` or `"hackbench-g16-l1000"`.
    pub fn name(&self) -> String {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_suites_resolve_with_knobs() {
        let WorkloadSpec::Configure(s) = parse_workload("configure:gdb,tests=40").unwrap() else {
            panic!("expected Configure");
        };
        assert_eq!(s.name, "gdb");
        assert_eq!(s.n_tests, 40);

        let WorkloadSpec::Nas(s) = parse_workload("nas:bt.C.x,iters=3").unwrap() else {
            panic!("expected Nas");
        };
        assert_eq!(s.iterations, 3);

        let WorkloadSpec::Phoronix(s) = parse_workload("phoronix:zstd compression 7").unwrap()
        else {
            panic!("expected Phoronix");
        };
        assert_eq!(s.name, "zstd compression 7");
    }

    #[test]
    fn parametric_suites_resolve() {
        let WorkloadSpec::Schbench(s) = parse_workload("schbench:mt=4,w=4,requests=20").unwrap()
        else {
            panic!("expected Schbench");
        };
        assert_eq!(
            (
                s.message_threads,
                s.workers_per_message,
                s.requests_per_worker
            ),
            (4, 4, 20)
        );
        let WorkloadSpec::Hackbench(h) = parse_workload("hackbench").unwrap() else {
            panic!("expected Hackbench");
        };
        assert_eq!(h.groups, HackbenchSpec::default().groups);
    }

    #[test]
    fn server_kinds_and_concurrency() {
        assert_eq!(
            parse_workload("server:nginx,c=50").unwrap().canonical(),
            "server:nginx,c=50"
        );
        assert_eq!(
            parse_workload("server:redis").unwrap().canonical(),
            "server:redis"
        );
        assert!(parse_workload("server:nginx").is_err(), "c is required");
        assert!(parse_workload("server:redis,c=9").is_err());
        assert!(parse_workload("server:postgres,c=1").is_err());
    }

    #[test]
    fn serve_parses_and_canonicalizes() {
        let WorkloadSpec::Serve(s) = parse_workload("serve:rate=500,dist=lognorm,slo=4ms").unwrap()
        else {
            panic!("expected Serve");
        };
        assert_eq!(s.rate, 500.0);
        assert_eq!(s.dist, ServiceDist::Lognorm);
        assert_eq!(s.slo_ns, 4_000_000);
        // Knob order canonicalizes; knobs at their base value drop out
        // (the default SLO is 2ms).
        assert_eq!(
            canonical_workload("serve:slo=4ms,dist=lognorm,rate=500").unwrap(),
            "serve:rate=500,dist=lognorm,slo=4ms"
        );
        assert_eq!(canonical_workload("serve:slo=2ms").unwrap(), "serve");
        assert_eq!(
            canonical_workload("serve:arrival=onoff,burst=12").unwrap(),
            "serve:arrival=onoff,burst=12"
        );
        assert_eq!(parse_workload("serve").unwrap().name(), "serve-r200");
    }

    #[test]
    fn serve_rejects_bad_specs() {
        let msg = parse_workload("serve:fast").unwrap_err().to_string();
        assert!(msg.contains("no members"), "{msg}");
        let msg = parse_workload("serve:dist=gaussian")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("det|exp|lognorm|bimodal"), "{msg}");
        let msg = parse_workload("serve:slo=2").unwrap_err().to_string();
        assert!(msg.contains("a duration like 2ms"), "{msg}");
        let msg = parse_workload("serve:rate=0").unwrap_err().to_string();
        assert!(msg.contains("rate must be positive"), "{msg}");
        let msg = parse_workload("serve:frobnicate=1")
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("valid parameters") && msg.contains("rate"),
            "{msg}"
        );
    }

    #[test]
    fn serve_colocation_carries_specs_through_multi() {
        let spec = parse_workload("serve:rate=500+hackbench:g=4").unwrap();
        assert_eq!(spec.canonical(), "serve:rate=500+hackbench:g=4");
        let specs = spec.build().serve_specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].rate, 500.0);
        // A non-serving workload carries none.
        assert!(parse_workload("hackbench")
            .unwrap()
            .build()
            .serve_specs()
            .is_empty());
    }

    #[test]
    fn multi_splits_on_plus() {
        let spec = parse_workload("phoronix:zstd compression 7+phoronix:libgav1 4").unwrap();
        let WorkloadSpec::Multi(parts) = &spec else {
            panic!("expected Multi");
        };
        assert_eq!(parts.len(), 2);
        // The built name matches the §5.6 multi-application convention —
        // and therefore the seed stream of the hand-wired original.
        assert_eq!(spec.name(), "zstd compression 7 + libgav1 4");
    }

    #[test]
    fn canonical_drops_default_knobs_and_fixes_order() {
        assert_eq!(
            canonical_workload("configure:gdb,jitter=0.5,tests=40").unwrap(),
            canonical_workload("configure:gdb,tests=40,jitter=0.5").unwrap()
        );
        // A knob written at its base value canonicalizes away.
        let base = configure::by_name("gdb").unwrap();
        assert_eq!(
            canonical_workload(&format!("configure:gdb,tests={}", base.n_tests)).unwrap(),
            "configure:gdb"
        );
        assert_eq!(canonical_workload("schbench").unwrap(), "schbench");
    }

    #[test]
    fn names_match_hand_wired_workloads() {
        for (spec, name) in [
            ("configure:gdb", "gdb"),
            ("hackbench", "hackbench-g16-l1000"),
            ("schbench:mt=4,w=4", "schbench-m4-w4"),
            ("server:nginx,c=200", "nginx-c200"),
            ("nas:bt.C.x", "bt.C.x"),
        ] {
            assert_eq!(parse_workload(spec).unwrap().name(), name, "{spec}");
        }
    }

    #[test]
    fn errors_list_members_and_knobs() {
        let msg = parse_workload("configure:gdbb").unwrap_err().to_string();
        assert!(
            msg.contains("unknown configure benchmark") && msg.contains("gdb"),
            "{msg}"
        );
        let msg = parse_workload("configure").unwrap_err().to_string();
        assert!(msg.contains("needs a member"), "{msg}");
        let msg = parse_workload("configure:gdb,cores=9")
            .unwrap_err()
            .to_string();
        assert!(
            msg.contains("valid parameters") && msg.contains("tests"),
            "{msg}"
        );
        let msg = parse_workload("phoronix:zstd compression 7,x=1")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("takes no parameters"), "{msg}");
        let msg = parse_workload("fortnite").unwrap_err().to_string();
        assert!(
            msg.contains("unknown workload suite") && msg.contains("configure"),
            "{msg}"
        );
    }

    #[test]
    fn fleet_prefix_parses_and_canonicalizes() {
        let spec =
            parse_workload("fleet:hosts=4,lb=warmth,retry=2,hedge=p95+serve:rate=500").unwrap();
        let WorkloadSpec::Fleet(f, inner) = &spec else {
            panic!("expected Fleet");
        };
        assert_eq!(f.hosts, 4);
        assert_eq!(f.retry, 2);
        assert!(matches!(**inner, WorkloadSpec::Serve(_)));
        assert_eq!(
            spec.canonical(),
            "fleet:hosts=4,lb=warmth,retry=2,hedge=p95+serve:rate=500"
        );
        // Default knobs drop; knob order normalizes.
        assert_eq!(
            canonical_workload("fleet:retry=1,hosts=2+serve").unwrap(),
            "fleet+serve"
        );
        // The built workload reports the fleet spec and serves.
        let wl = spec.build();
        assert_eq!(wl.fleet_spec().unwrap().hosts, 4);
        assert_eq!(wl.serve_specs().len(), 1);
    }

    #[test]
    fn fleet_colocates_background_work() {
        let spec =
            parse_workload("fleet:hosts=2,hostdown=1@50ms:100ms+serve:rate=500+hackbench:g=4")
                .unwrap();
        let WorkloadSpec::Fleet(f, inner) = &spec else {
            panic!("expected Fleet");
        };
        assert_eq!(f.down.as_ref().unwrap().count, 1);
        let WorkloadSpec::Multi(parts) = &**inner else {
            panic!("expected Multi inner");
        };
        assert_eq!(parts.len(), 2);
        assert_eq!(
            spec.canonical(),
            "fleet:hostdown=1@50ms:100ms+serve:rate=500+hackbench:g=4"
        );
    }

    #[test]
    fn fleet_rejects_bad_shapes() {
        let msg = parse_workload("fleet:hosts=4").unwrap_err().to_string();
        assert!(msg.contains("front-end prefix"), "{msg}");
        let msg = parse_workload("fleet:hosts=4+hackbench")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("at least one serve part"), "{msg}");
        let msg = parse_workload("fleet:hosts=99+serve")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("hosts"), "{msg}");
        let msg = parse_workload("serve+fleet:hosts=2+serve")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("must come first"), "{msg}");
        let msg = parse_workload("fleet:warmth+serve")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("no members"), "{msg}");
    }

    #[test]
    fn every_registered_member_round_trips() {
        for suite in ["configure", "dacapo", "nas", "phoronix"] {
            for member in suite_members(suite).unwrap() {
                let spec_str = format!("{suite}:{member}");
                let spec = parse_workload(&spec_str).unwrap();
                assert_eq!(spec.canonical(), spec_str);
                assert!(!spec.name().is_empty());
            }
        }
    }
}
