//! The governor registry: `performance` and `schedutil`, with the
//! paper's figure-label short forms (`perf`, `sched`) as aliases.

use nest_freq::Governor;

use crate::error::ScenarioError;

/// `(canonical key, governor, summary)` for every registered governor.
pub fn governor_entries() -> [(&'static str, Governor, &'static str); 2] {
    [
        (
            "performance",
            Governor::Performance,
            "request at least the nominal frequency (alias: perf)",
        ),
        (
            "schedutil",
            Governor::Schedutil,
            "request frequency proportional to utilization (alias: sched)",
        ),
    ]
}

/// Every canonical governor key.
pub fn governor_keys() -> Vec<&'static str> {
    governor_entries().iter().map(|(k, _, _)| *k).collect()
}

/// Resolves `name` (key or alias, case-insensitive) to its canonical key.
pub fn canonical_governor(name: &str) -> Result<&'static str, ScenarioError> {
    match name.trim().to_ascii_lowercase().as_str() {
        "performance" | "perf" => Ok("performance"),
        "schedutil" | "sched" => Ok("schedutil"),
        _ => Err(ScenarioError::UnknownEntry {
            kind: "governor",
            name: name.to_string(),
            valid: governor_keys().iter().map(|k| k.to_string()).collect(),
        }),
    }
}

/// Resolves `name` to a [`Governor`].
pub fn governor(name: &str) -> Result<Governor, ScenarioError> {
    Ok(match canonical_governor(name)? {
        "performance" => Governor::Performance,
        _ => Governor::Schedutil,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_and_aliases_resolve() {
        assert_eq!(governor("performance").unwrap(), Governor::Performance);
        assert_eq!(governor("perf").unwrap(), Governor::Performance);
        assert_eq!(governor("SCHED").unwrap(), Governor::Schedutil);
        assert_eq!(governor("schedutil").unwrap(), Governor::Schedutil);
    }

    #[test]
    fn unknown_governor_lists_valid_keys() {
        let msg = governor("ondemand").unwrap_err().to_string();
        assert!(
            msg.contains("performance") && msg.contains("schedutil"),
            "{msg}"
        );
    }
}
