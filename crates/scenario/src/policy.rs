//! The policy registry: `cfs`, `nest`, `smove`, each with `key=value`
//! parameter overrides (`nest:spin=off,r_impatient=3`).
//!
//! Parsing is *value-normalizing*: a spec whose overrides all equal the
//! defaults resolves to the bare [`PolicyKind`] variant (`nest:spin=on` ≡
//! `nest`), so equivalent specs share one canonical string, one cache
//! key, and one seed stream. Canonical strings list only the parameters
//! that differ from the defaults, in declaration order.

use nest_core::PolicyKind;
use nest_sched::{CfsParams, NestDomain, NestParams, SmoveParams};
use nest_simcore::CoreId;

use crate::error::ScenarioError;
use crate::spec::{
    fmt_bool, fmt_f64, parse_bool, parse_f64, parse_spec, parse_u32, parse_u64, parse_usize,
    ParsedSpec,
};

/// Every canonical policy key.
pub fn policy_keys() -> Vec<&'static str> {
    vec!["cfs", "nest", "smove"]
}

/// `(key, summary)` pairs for `nest-sim list`.
pub fn policy_entries() -> Vec<(&'static str, String)> {
    vec![
        (
            "cfs",
            format!(
                "Linux CFS baseline (§2.1); parameters: {}",
                CFS_PARAMS.join(", ")
            ),
        ),
        (
            "nest",
            format!(
                "the Nest scheduler (§3, Table 1 defaults); parameters: {}",
                NEST_PARAMS.join(", ")
            ),
        ),
        (
            "smove",
            format!(
                "the Smove baseline (§2.2); parameters: {}",
                SMOVE_PARAMS.join(", ")
            ),
        ),
    ]
}

const CFS_PARAMS: [&str; 3] = ["scan_budget", "die_ticks", "numa_ticks"];
const NEST_PARAMS: [&str; 12] = [
    "p_remove",
    "r_max",
    "r_impatient",
    "s_max",
    "anchor",
    "domain",
    "reserve",
    "compaction",
    "spin",
    "attachment",
    "wwc",
    "resflag",
];
const SMOVE_PARAMS: [&str; 2] = ["delay_ns", "low_freq"];

fn unknown_param(entry: &str, param: &str, valid: &[&str]) -> ScenarioError {
    ScenarioError::UnknownParam {
        kind: "policy",
        entry: entry.to_string(),
        param: param.to_string(),
        valid: valid.iter().map(|p| p.to_string()).collect(),
    }
}

fn apply_cfs(p: &ParsedSpec) -> Result<CfsParams, ScenarioError> {
    let mut c = CfsParams::default();
    for (k, v) in &p.params {
        match k.as_str() {
            "scan_budget" => c.wakeup_scan_budget = parse_usize(k, v)?,
            "die_ticks" => c.die_balance_ticks = parse_u64(k, v)?,
            "numa_ticks" => c.numa_balance_ticks = parse_u64(k, v)?,
            _ => return Err(unknown_param("cfs", k, &CFS_PARAMS)),
        }
    }
    Ok(c)
}

fn apply_nest(p: &ParsedSpec) -> Result<NestParams, ScenarioError> {
    let mut n = NestParams::default();
    for (k, v) in &p.params {
        match k.as_str() {
            "p_remove" => n.p_remove_ticks = parse_u64(k, v)?,
            "r_max" => n.r_max = parse_usize(k, v)?,
            "r_impatient" => n.r_impatient = parse_u32(k, v)?,
            "s_max" => n.s_max_ticks = parse_u32(k, v)?,
            "anchor" => n.anchor_core = CoreId(parse_u32(k, v)?),
            "domain" => {
                n.domain = match v.trim() {
                    "machine" => NestDomain::Machine,
                    "ccx" => NestDomain::Ccx,
                    _ => {
                        return Err(ScenarioError::BadValue {
                            param: "domain".to_string(),
                            value: v.to_string(),
                            expected: "machine or ccx",
                        })
                    }
                }
            }
            "reserve" => n.enable_reserve = parse_bool(k, v)?,
            "compaction" => n.enable_compaction = parse_bool(k, v)?,
            "spin" => n.enable_spin = parse_bool(k, v)?,
            "attachment" => n.enable_attachment = parse_bool(k, v)?,
            "wwc" => n.enable_wakeup_work_conservation = parse_bool(k, v)?,
            "resflag" => n.enable_reservation_flag = parse_bool(k, v)?,
            _ => return Err(unknown_param("nest", k, &NEST_PARAMS)),
        }
    }
    Ok(n)
}

fn apply_smove(p: &ParsedSpec) -> Result<SmoveParams, ScenarioError> {
    let mut s = SmoveParams::default();
    for (k, v) in &p.params {
        match k.as_str() {
            "delay_ns" => s.timer_delay_ns = parse_u64(k, v)?,
            "low_freq" => s.low_freq_factor = parse_f64(k, v)?,
            _ => return Err(unknown_param("smove", k, &SMOVE_PARAMS)),
        }
    }
    Ok(s)
}

fn canon_cfs(c: &CfsParams) -> String {
    let d = CfsParams::default();
    let mut parts = Vec::new();
    if c.wakeup_scan_budget != d.wakeup_scan_budget {
        parts.push(format!("scan_budget={}", c.wakeup_scan_budget));
    }
    if c.die_balance_ticks != d.die_balance_ticks {
        parts.push(format!("die_ticks={}", c.die_balance_ticks));
    }
    if c.numa_balance_ticks != d.numa_balance_ticks {
        parts.push(format!("numa_ticks={}", c.numa_balance_ticks));
    }
    render("cfs", parts)
}

fn canon_nest(n: &NestParams) -> String {
    let d = NestParams::default();
    let mut parts = Vec::new();
    if n.p_remove_ticks != d.p_remove_ticks {
        parts.push(format!("p_remove={}", n.p_remove_ticks));
    }
    if n.r_max != d.r_max {
        parts.push(format!("r_max={}", n.r_max));
    }
    if n.r_impatient != d.r_impatient {
        parts.push(format!("r_impatient={}", n.r_impatient));
    }
    if n.s_max_ticks != d.s_max_ticks {
        parts.push(format!("s_max={}", n.s_max_ticks));
    }
    if n.anchor_core != d.anchor_core {
        parts.push(format!("anchor={}", n.anchor_core.0));
    }
    if n.domain != d.domain {
        parts.push(match n.domain {
            NestDomain::Machine => "domain=machine".to_string(),
            NestDomain::Ccx => "domain=ccx".to_string(),
        });
    }
    if n.enable_reserve != d.enable_reserve {
        parts.push(format!("reserve={}", fmt_bool(n.enable_reserve)));
    }
    if n.enable_compaction != d.enable_compaction {
        parts.push(format!("compaction={}", fmt_bool(n.enable_compaction)));
    }
    if n.enable_spin != d.enable_spin {
        parts.push(format!("spin={}", fmt_bool(n.enable_spin)));
    }
    if n.enable_attachment != d.enable_attachment {
        parts.push(format!("attachment={}", fmt_bool(n.enable_attachment)));
    }
    if n.enable_wakeup_work_conservation != d.enable_wakeup_work_conservation {
        parts.push(format!(
            "wwc={}",
            fmt_bool(n.enable_wakeup_work_conservation)
        ));
    }
    if n.enable_reservation_flag != d.enable_reservation_flag {
        parts.push(format!("resflag={}", fmt_bool(n.enable_reservation_flag)));
    }
    render("nest", parts)
}

fn canon_smove(s: &SmoveParams) -> String {
    let d = SmoveParams::default();
    let mut parts = Vec::new();
    if s.timer_delay_ns != d.timer_delay_ns {
        parts.push(format!("delay_ns={}", s.timer_delay_ns));
    }
    if s.low_freq_factor != d.low_freq_factor {
        parts.push(format!("low_freq={}", fmt_f64(s.low_freq_factor)));
    }
    render("smove", parts)
}

fn render(head: &str, parts: Vec<String>) -> String {
    if parts.is_empty() {
        head.to_string()
    } else {
        format!("{head}:{}", parts.join(","))
    }
}

/// The canonical spec string of a resolved [`PolicyKind`]: the registry
/// key plus only the parameters that differ from the defaults.
pub fn policy_spec_of(kind: &PolicyKind) -> String {
    match kind {
        PolicyKind::Cfs => "cfs".to_string(),
        PolicyKind::CfsWith(p) => canon_cfs(p),
        PolicyKind::Nest => "nest".to_string(),
        PolicyKind::NestWith(p) => canon_nest(p),
        PolicyKind::Smove => "smove".to_string(),
        PolicyKind::SmoveWith(p) => canon_smove(p),
    }
}

/// Resolves a policy spec string to a [`PolicyKind`], normalizing
/// default-equal overrides to the bare variant.
pub fn policy(spec: &str) -> Result<PolicyKind, ScenarioError> {
    let p = parse_spec("policy", spec)?;
    if let Some(member) = &p.member {
        return Err(ScenarioError::MalformedSpec {
            spec: spec.trim().to_string(),
            reason: format!("policy parameters must be key=value (got \"{member}\")"),
        });
    }
    let kind = match p.head.as_str() {
        "cfs" => {
            let c = apply_cfs(&p)?;
            if canon_cfs(&c) == "cfs" {
                PolicyKind::Cfs
            } else {
                PolicyKind::CfsWith(c)
            }
        }
        "nest" => {
            let n = apply_nest(&p)?;
            if canon_nest(&n) == "nest" {
                PolicyKind::Nest
            } else {
                PolicyKind::NestWith(n)
            }
        }
        "smove" => {
            let s = apply_smove(&p)?;
            if canon_smove(&s) == "smove" {
                PolicyKind::Smove
            } else {
                PolicyKind::SmoveWith(s)
            }
        }
        _ => {
            return Err(ScenarioError::UnknownEntry {
                kind: "policy",
                name: p.head,
                valid: policy_keys().iter().map(|k| k.to_string()).collect(),
            })
        }
    };
    Ok(kind)
}

/// Canonicalizes a policy spec string (parse, normalize, re-render).
pub fn canonical_policy(spec: &str) -> Result<String, ScenarioError> {
    Ok(policy_spec_of(&policy(spec)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_keys_resolve_to_bare_variants() {
        assert!(matches!(policy("cfs").unwrap(), PolicyKind::Cfs));
        assert!(matches!(policy("nest").unwrap(), PolicyKind::Nest));
        assert!(matches!(policy("smove").unwrap(), PolicyKind::Smove));
    }

    #[test]
    fn overrides_apply() {
        let PolicyKind::NestWith(n) = policy("nest:spin=off,r_impatient=3").unwrap() else {
            panic!("expected NestWith");
        };
        assert!(!n.enable_spin);
        assert_eq!(n.r_impatient, 3);
        assert_eq!(n.r_max, NestParams::default().r_max);

        let PolicyKind::CfsWith(c) = policy("cfs:scan_budget=2").unwrap() else {
            panic!("expected CfsWith");
        };
        assert_eq!(c.wakeup_scan_budget, 2);

        let PolicyKind::SmoveWith(s) = policy("smove:low_freq=0.9").unwrap() else {
            panic!("expected SmoveWith");
        };
        assert_eq!(s.low_freq_factor, 0.9);
    }

    #[test]
    fn default_equal_overrides_normalize_to_bare() {
        // `spin=on` IS the default, so the variant (and hence the Debug
        // identity that feeds seed derivation) must be the bare one.
        assert!(matches!(policy("nest:spin=on").unwrap(), PolicyKind::Nest));
        assert_eq!(canonical_policy("nest:spin=on").unwrap(), "nest");
        assert_eq!(canonical_policy("smove:low_freq=1.0").unwrap(), "smove");
    }

    #[test]
    fn canonical_orders_by_declaration_not_input() {
        assert_eq!(
            canonical_policy("nest:r_impatient=3,spin=off").unwrap(),
            "nest:r_impatient=3,spin=off"
        );
        assert_eq!(
            canonical_policy("nest:spin=off,r_impatient=3").unwrap(),
            "nest:r_impatient=3,spin=off"
        );
    }

    #[test]
    fn unknown_key_and_param_are_typed_errors() {
        let msg = policy("eevdf").unwrap_err().to_string();
        assert!(msg.contains("cfs, nest, smove"), "{msg}");
        let msg = policy("nest:spinny=off").unwrap_err().to_string();
        assert!(
            msg.contains("valid parameters") && msg.contains("spin"),
            "{msg}"
        );
        assert!(policy("nest:spin=maybe").is_err());
        assert!(policy("nest:gdb").is_err(), "positional member rejected");
    }

    #[test]
    fn domain_knob_selects_the_ccx_local_nest() {
        let PolicyKind::NestWith(n) = policy("nest:domain=ccx").unwrap() else {
            panic!("expected NestWith");
        };
        assert_eq!(n.domain, NestDomain::Ccx);
        assert_eq!(
            canonical_policy("nest:domain=ccx").unwrap(),
            "nest:domain=ccx"
        );
        // `domain=machine` is the default and normalises away.
        assert!(matches!(
            policy("nest:domain=machine").unwrap(),
            PolicyKind::Nest
        ));
        let msg = policy("nest:domain=numa").unwrap_err().to_string();
        assert!(msg.contains("machine or ccx"), "{msg}");
    }

    #[test]
    fn spec_of_covers_every_variant() {
        for (spec, expect) in [
            ("cfs:die_ticks=8", "cfs:die_ticks=8"),
            ("smove:delay_ns=200000", "smove:delay_ns=200000"),
            ("nest:wwc=off,resflag=off", "nest:wwc=off,resflag=off"),
            ("nest:domain=ccx,spin=off", "nest:domain=ccx,spin=off"),
        ] {
            assert_eq!(canonical_policy(spec).unwrap(), expect);
        }
    }
}
