//! The shared `name[:member][,k=v,…]` spec grammar.
//!
//! Every registry string — `nest:spin=off,r_impatient=3`,
//! `configure:gdb`, `schbench:mt=4,w=4` — parses through [`parse_spec`]:
//! a head (the registry key), an optional positional member (the first
//! `=`-less token after the colon), and ordered `key=value` parameters.
//! Duplicate keys and trailing positional tokens are errors, never
//! silently dropped.

use crate::error::ScenarioError;

/// A parsed `head[:member][,k=v,…]` string.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedSpec {
    /// The registry key before the first `:` (lowercased).
    pub head: String,
    /// The positional member, when the first token after `:` has no `=`.
    pub member: Option<String>,
    /// `key=value` parameters in the order written.
    pub params: Vec<(String, String)>,
}

/// Parses `input` against the shared grammar. `kind` names the registry
/// for error messages.
pub fn parse_spec(kind: &'static str, input: &str) -> Result<ParsedSpec, ScenarioError> {
    let input = input.trim();
    let malformed = |reason: String| ScenarioError::MalformedSpec {
        spec: input.to_string(),
        reason,
    };
    let (head, rest) = match input.split_once(':') {
        Some((h, r)) => (h.trim(), Some(r)),
        None => (input, None),
    };
    if head.is_empty() {
        return Err(malformed(format!("empty {kind} name")));
    }
    let mut member = None;
    let mut params: Vec<(String, String)> = Vec::new();
    if let Some(rest) = rest {
        if rest.trim().is_empty() {
            return Err(malformed("nothing after `:`".into()));
        }
        for (i, token) in rest.split(',').enumerate() {
            let token = token.trim();
            if token.is_empty() {
                return Err(malformed("empty token between commas".into()));
            }
            match token.split_once('=') {
                Some((k, v)) => {
                    let (k, v) = (k.trim(), v.trim());
                    if k.is_empty() || v.is_empty() {
                        return Err(malformed(format!("incomplete parameter \"{token}\"")));
                    }
                    if params.iter().any(|(seen, _)| seen == k) {
                        return Err(malformed(format!("duplicate parameter \"{k}\"")));
                    }
                    params.push((k.to_string(), v.to_string()));
                }
                None if i == 0 => member = Some(token.to_string()),
                None => {
                    return Err(malformed(format!(
                        "positional token \"{token}\" after the first position \
                         (parameters must be key=value)"
                    )));
                }
            }
        }
    }
    Ok(ParsedSpec {
        head: head.to_ascii_lowercase(),
        member,
        params,
    })
}

fn bad(param: &str, value: &str, expected: &'static str) -> ScenarioError {
    ScenarioError::BadValue {
        param: param.to_string(),
        value: value.to_string(),
        expected,
    }
}

/// Parses a `u32` parameter value.
pub fn parse_u32(param: &str, value: &str) -> Result<u32, ScenarioError> {
    value
        .parse()
        .map_err(|_| bad(param, value, "a non-negative integer"))
}

/// Parses a `u64` parameter value.
pub fn parse_u64(param: &str, value: &str) -> Result<u64, ScenarioError> {
    value
        .parse()
        .map_err(|_| bad(param, value, "a non-negative integer"))
}

/// Parses a `usize` parameter value.
pub fn parse_usize(param: &str, value: &str) -> Result<usize, ScenarioError> {
    value
        .parse()
        .map_err(|_| bad(param, value, "a non-negative integer"))
}

/// Parses an `f64` parameter value (must be finite).
pub fn parse_f64(param: &str, value: &str) -> Result<f64, ScenarioError> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| bad(param, value, "a finite number"))
}

/// Parses a boolean parameter value: `on`/`off`, `true`/`false`, `1`/`0`.
pub fn parse_bool(param: &str, value: &str) -> Result<bool, ScenarioError> {
    match value.to_ascii_lowercase().as_str() {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        _ => Err(bad(param, value, "on|off")),
    }
}

/// Renders a boolean in canonical `on`/`off` form.
pub fn fmt_bool(v: bool) -> &'static str {
    if v {
        "on"
    } else {
        "off"
    }
}

/// Renders an `f64` canonically (Rust's shortest round-trip `Display`).
pub fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_head() {
        let p = parse_spec("policy", "nest").unwrap();
        assert_eq!(p.head, "nest");
        assert_eq!(p.member, None);
        assert!(p.params.is_empty());
    }

    #[test]
    fn member_and_params() {
        let p = parse_spec("workload", "configure:gdb,tests=40").unwrap();
        assert_eq!(p.head, "configure");
        assert_eq!(p.member.as_deref(), Some("gdb"));
        assert_eq!(p.params, vec![("tests".to_string(), "40".to_string())]);
    }

    #[test]
    fn params_only_and_order_preserved() {
        let p = parse_spec("policy", "nest:spin=off,r_impatient=3").unwrap();
        assert_eq!(p.member, None);
        assert_eq!(
            p.params,
            vec![
                ("spin".to_string(), "off".to_string()),
                ("r_impatient".to_string(), "3".to_string())
            ]
        );
    }

    #[test]
    fn member_may_contain_spaces() {
        let p = parse_spec("workload", "phoronix:zstd compression 7").unwrap();
        assert_eq!(p.member.as_deref(), Some("zstd compression 7"));
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let e = parse_spec("policy", "nest:spin=off,spin=on").unwrap_err();
        assert!(e.to_string().contains("duplicate parameter"));
    }

    #[test]
    fn late_positional_is_rejected() {
        let e = parse_spec("workload", "server:c=5,nginx").unwrap_err();
        assert!(e.to_string().contains("positional token"));
    }

    #[test]
    fn empty_pieces_are_rejected() {
        assert!(parse_spec("policy", "").is_err());
        assert!(parse_spec("policy", "nest:").is_err());
        assert!(parse_spec("policy", "nest:a=1,,b=2").is_err());
        assert!(parse_spec("policy", "nest:=3").is_err());
        assert!(parse_spec("policy", "nest:x=").is_err());
    }

    #[test]
    fn value_parsers() {
        assert_eq!(parse_u32("g", "16").unwrap(), 16);
        assert!(parse_u32("g", "-1").is_err());
        assert_eq!(parse_f64("j", "0.5").unwrap(), 0.5);
        assert!(parse_f64("j", "nan").is_err());
        assert!(parse_bool("spin", "on").unwrap());
        assert!(!parse_bool("spin", "0").unwrap());
        assert!(parse_bool("spin", "maybe").is_err());
    }

    #[test]
    fn canonical_renderers() {
        assert_eq!(fmt_bool(true), "on");
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.5), "0.5");
    }
}
