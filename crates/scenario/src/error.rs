//! Typed errors for registry lookups and scenario parsing.
//!
//! Every lookup failure names the registry it came from and lists the
//! valid entries, so a mistyped `nest-sim` argument produces an actionable
//! message instead of a panic.

use std::fmt;

/// Why a registry lookup or scenario string failed to resolve.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// A name was not found in its registry.
    UnknownEntry {
        /// Which registry ("machine", "policy", "configure benchmark", …).
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
        /// Every valid name, for the error message.
        valid: Vec<String>,
    },
    /// A parameter key is not recognised by the entry it was applied to.
    UnknownParam {
        /// Which registry the entry belongs to.
        kind: &'static str,
        /// The entry the parameter was applied to.
        entry: String,
        /// The unrecognised parameter key.
        param: String,
        /// Every parameter key the entry accepts.
        valid: Vec<String>,
    },
    /// A parameter value failed to parse as its declared type.
    BadValue {
        /// The parameter key.
        param: String,
        /// The value that failed to parse.
        value: String,
        /// What the parameter expects ("integer", "number", "on|off").
        expected: &'static str,
    },
    /// The spec string itself does not follow `name[:k=v,…]` syntax.
    MalformedSpec {
        /// The offending spec string.
        spec: String,
        /// What is wrong with it.
        reason: String,
    },
    /// A JSON document does not have the scenario shape.
    BadJson {
        /// What is missing or mistyped.
        reason: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownEntry { kind, name, valid } => {
                write!(
                    f,
                    "unknown {kind} \"{name}\"; valid entries: {}",
                    valid.join(", ")
                )
            }
            ScenarioError::UnknownParam {
                kind,
                entry,
                param,
                valid,
            } => {
                if valid.is_empty() {
                    write!(
                        f,
                        "{kind} \"{entry}\" takes no parameters (got \"{param}\")"
                    )
                } else {
                    write!(
                        f,
                        "unknown parameter \"{param}\" for {kind} \"{entry}\"; \
                         valid parameters: {}",
                        valid.join(", ")
                    )
                }
            }
            ScenarioError::BadValue {
                param,
                value,
                expected,
            } => {
                write!(f, "parameter \"{param}\": \"{value}\" is not {expected}")
            }
            ScenarioError::MalformedSpec { spec, reason } => {
                write!(f, "malformed spec \"{spec}\": {reason}")
            }
            ScenarioError::BadJson { reason } => write!(f, "bad scenario JSON: {reason}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_valid_entries() {
        let e = ScenarioError::UnknownEntry {
            kind: "machine",
            name: "i81".into(),
            valid: vec!["5218".into(), "e7-8870".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown machine \"i81\""), "{msg}");
        assert!(msg.contains("5218, e7-8870"), "{msg}");
    }

    #[test]
    fn display_handles_param_errors() {
        let e = ScenarioError::UnknownParam {
            kind: "policy",
            entry: "nest".into(),
            param: "spinny".into(),
            valid: vec!["spin".into()],
        };
        assert!(e.to_string().contains("valid parameters: spin"));
        let none = ScenarioError::UnknownParam {
            kind: "phoronix test",
            entry: "zstd compression 7".into(),
            param: "c".into(),
            valid: vec![],
        };
        assert!(none.to_string().contains("takes no parameters"));
    }
}
