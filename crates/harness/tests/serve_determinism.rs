//! The serving lens inherits the harness's determinism contract: for a
//! fixed scenario set — including a colocated `serve+hackbench` cell and
//! a faulted (`stragglers=`) cell — serving artifacts are byte-identical
//! across worker counts and cache states, and every serving run carries
//! its `serve` summary block.

use nest_harness::cache::{Cache, CacheMode};
use nest_harness::{comparison_json, Json, Matrix, Progress};
use nest_scenario::Scenario;

const SERVE: &str = "serve:rate=400,requests=200,dist=lognorm";

fn scenario(policy: &str, workload: &str) -> Scenario {
    Scenario::parse("5218", policy, "schedutil", workload)
        .unwrap()
        .with_seed(7)
        .with_runs(2)
}

/// Three comparison blocks: a plain stream under two policies, one
/// colocation, and one faulted cell.
fn add_serving_blocks(m: &mut Matrix) {
    m.add_scenarios(&[scenario("cfs", SERVE), scenario("nest", SERVE)])
        .unwrap();
    m.add_scenarios(&[scenario("nest", &format!("{SERVE}+hackbench:g=2,loops=50"))])
        .unwrap();
    m.add_scenarios(&[scenario("nest", SERVE)
        .with_faults("faults:stragglers=2@20ms:100ms")
        .unwrap()])
        .unwrap();
}

fn run_block(jobs: usize, cache: Cache) -> (String, u64) {
    let mut m = Matrix::new("serve-determinism-test", 7)
        .with_jobs(jobs)
        .with_cache(cache)
        .with_progress(Progress::quiet());
    add_serving_blocks(&mut m);
    let (comps, telemetry) = m.run();
    let bytes = Json::Arr(comps.iter().map(comparison_json).collect()).to_pretty();
    (bytes, telemetry.invariants.violations)
}

#[test]
fn serving_artifacts_are_identical_across_worker_counts() {
    let (a, va) = run_block(1, Cache::disabled());
    let (b, vb) = run_block(2, Cache::disabled());
    assert_eq!(a, b, "NEST_JOBS=1 and NEST_JOBS=2 must agree byte-for-byte");
    assert_eq!((va, vb), (0, 0), "serving must not break kernel invariants");
}

#[test]
fn serving_artifacts_are_identical_across_cache_states() {
    let dir = std::env::temp_dir().join(format!("nest-serve-cache-{}", std::process::id()));
    let (off, _) = run_block(2, Cache::disabled());
    let (cold, _) = run_block(2, Cache::at(dir.clone(), CacheMode::Clear));
    // The warm rerun must be served fully from cache — the serve summary
    // travels through the cache codec, not just through live runs.
    let mut m = Matrix::new("serve-determinism-test", 7)
        .with_jobs(2)
        .with_cache(Cache::at(dir.clone(), CacheMode::On))
        .with_progress(Progress::quiet());
    add_serving_blocks(&mut m);
    let (comps, t_warm) = m.run();
    assert_eq!(t_warm.cells_cached, t_warm.cells_total);
    let warm = Json::Arr(comps.iter().map(comparison_json).collect()).to_pretty();
    assert_eq!(off, cold, "cache off vs cache cold");
    assert_eq!(cold, warm, "cache cold vs cache warm");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn every_serving_run_carries_its_serve_block() {
    let (bytes, _) = run_block(2, Cache::disabled());
    let parsed = nest_harness::json::parse(&bytes).unwrap();
    let comps = parsed.as_arr().unwrap();
    assert_eq!(comps.len(), 3);
    for comp in comps {
        for row in comp.get("rows").unwrap().as_arr().unwrap() {
            for run in row.get("runs").unwrap().as_arr().unwrap() {
                let serve = run.get("serve").expect("serving run lost its serve block");
                assert_eq!(serve.get("offered").unwrap().as_u64(), Some(200));
                assert!(serve.get("p99_ns").unwrap().as_u64().unwrap() > 0);
            }
        }
    }
}
