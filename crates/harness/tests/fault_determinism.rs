//! Fault injection inherits the harness's determinism contract: for a
//! fixed scenario and fault spec, artifacts are byte-identical across
//! worker counts, faulted results differ from fault-free ones, and the
//! fault plan is part of the cache identity so the two never collide.

use nest_harness::cache::{Cache, CacheMode};
use nest_harness::{comparison_json, Json, Matrix, Progress};
use nest_scenario::Scenario;

const FAULT_SPEC: &str = "faults:hotplug=4@50ms:200ms,throttle=s0:0.7,jitter=50us";

/// One scenario block: the three policies under the same fault plan.
fn faulted_scenarios(spec: &str) -> Vec<Scenario> {
    ["cfs", "nest", "smove"]
        .iter()
        .map(|policy| {
            Scenario::parse("5218", policy, "schedutil", "configure:gdb")
                .unwrap()
                .with_seed(11)
                .with_runs(2)
                .with_faults(spec)
                .unwrap()
        })
        .collect()
}

fn run_block(scenarios: &[Scenario], jobs: usize, cache: Cache) -> (String, u64) {
    let mut m = Matrix::new("fault-determinism-test", 11)
        .with_jobs(jobs)
        .with_cache(cache)
        .with_progress(Progress::quiet());
    m.add_scenarios(scenarios).unwrap();
    let (comps, telemetry) = m.run();
    let bytes = Json::Arr(comps.iter().map(comparison_json).collect()).to_pretty();
    (bytes, telemetry.invariants.violations)
}

#[test]
fn faulted_artifacts_are_identical_across_worker_counts() {
    let scenarios = faulted_scenarios(FAULT_SPEC);
    let (a, va) = run_block(&scenarios, 1, Cache::disabled());
    let (b, vb) = run_block(&scenarios, 4, Cache::disabled());
    assert_eq!(a, b, "NEST_JOBS=1 and NEST_JOBS=4 must agree byte-for-byte");
    assert_eq!((va, vb), (0, 0), "faults must not break kernel invariants");
}

#[test]
fn faulted_results_differ_from_fault_free() {
    let (faulted, _) = run_block(&faulted_scenarios(FAULT_SPEC), 2, Cache::disabled());
    let (free, _) = run_block(&faulted_scenarios("faults"), 2, Cache::disabled());
    assert_ne!(faulted, free, "the fault plan must perturb the simulation");
}

#[test]
fn fault_plan_separates_cache_entries() {
    let dir = std::env::temp_dir().join(format!("nest-fault-cache-{}", std::process::id()));
    let (cold, _) = run_block(
        &faulted_scenarios(FAULT_SPEC),
        2,
        Cache::at(dir.clone(), CacheMode::Clear),
    );
    // A fault-free block over the same scenarios must not hit the faulted
    // entries (the plan is part of the identity)...
    let mut m = Matrix::new("fault-determinism-test", 11)
        .with_jobs(2)
        .with_cache(Cache::at(dir.clone(), CacheMode::On))
        .with_progress(Progress::quiet());
    m.add_scenarios(&faulted_scenarios("faults")).unwrap();
    let (_, t_free) = m.run();
    assert_eq!(t_free.cells_cached, 0, "fault-free run hit faulted entries");
    // ...while re-running the faulted block is served fully from cache,
    // byte-identically.
    let mut m = Matrix::new("fault-determinism-test", 11)
        .with_jobs(2)
        .with_cache(Cache::at(dir.clone(), CacheMode::On))
        .with_progress(Progress::quiet());
    m.add_scenarios(&faulted_scenarios(FAULT_SPEC)).unwrap();
    let (comps, t_warm) = m.run();
    assert_eq!(t_warm.cells_cached, t_warm.cells_total);
    let warm = Json::Arr(comps.iter().map(comparison_json).collect()).to_pretty();
    assert_eq!(cold, warm);
    let _ = std::fs::remove_dir_all(dir);
}
