//! The harness's central guarantee, pinned as tests: for a fixed base
//! seed, results and artifacts are byte-identical regardless of worker
//! count, cache state, or completion order.

use nest_core::experiment::SchedulerSetup;
use nest_core::presets;
use nest_core::{Governor, PolicyKind};
use nest_harness::cache::{cell_identity, cell_key, Cache, CacheMode};
use nest_harness::{comparison_json, Json, Matrix, Progress, Telemetry};
use nest_workloads::configure::Configure;
use nest_workloads::dacapo::Dacapo;

fn test_matrix(base_seed: u64, jobs: usize, cache: Cache) -> Matrix {
    let mut m = Matrix::new("determinism-test", base_seed)
        .with_jobs(jobs)
        .with_cache(cache)
        .with_progress(Progress::quiet());
    let setups = vec![
        SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil),
        SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil),
        SchedulerSetup::new(PolicyKind::Nest, Governor::Performance),
    ];
    m.add(
        presets::xeon_5218(),
        &setups,
        2,
        Box::new(|| Box::new(Configure::named("gdb"))),
    );
    m.add(
        presets::xeon_5218(),
        &setups[..2],
        2,
        Box::new(|| Box::new(Dacapo::named("fop"))),
    );
    m
}

/// Serializes comparisons the way figure artifacts do, so equality is
/// byte-level over the full artifact payload, not just summary fields.
fn artifact_bytes(comps: &[nest_core::Comparison]) -> String {
    Json::Arr(comps.iter().map(comparison_json).collect()).to_pretty()
}

fn scratch_cache(tag: &str) -> (std::path::PathBuf, Cache) {
    let dir = std::env::temp_dir().join(format!("nest-determinism-{}-{tag}", std::process::id()));
    (dir.clone(), Cache::at(dir, CacheMode::Clear))
}

#[test]
fn jobs_1_and_jobs_8_produce_identical_artifacts() {
    let (c1, _) = test_matrix(42, 1, Cache::disabled()).run();
    let (c8, t8) = test_matrix(42, 8, Cache::disabled()).run();
    assert_eq!(t8.jobs.min(8), t8.jobs);
    // Field-level equality of every run summary...
    assert_eq!(c1.len(), c8.len());
    for (a, b) in c1.iter().zip(&c8) {
        assert_eq!(a.workload, b.workload);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.runs, rb.runs, "{}: per-run summaries differ", ra.label);
        }
    }
    // ...and byte-level equality of the serialized artifact payload.
    assert_eq!(artifact_bytes(&c1), artifact_bytes(&c8));
}

#[test]
fn different_seeds_produce_different_results() {
    let (a, _) = test_matrix(1, 4, Cache::disabled()).run();
    let (b, _) = test_matrix(2, 4, Cache::disabled()).run();
    assert_ne!(artifact_bytes(&a), artifact_bytes(&b));
}

#[test]
fn cached_rerun_is_identical_and_fully_hits() {
    let (dir, cache) = scratch_cache("rerun");
    let (cold, t_cold) = test_matrix(7, 4, cache).run();
    assert_eq!(t_cold.cells_cached, 0, "first run must miss");

    let (_, cache_again) = (dir.clone(), Cache::at(dir.clone(), CacheMode::On));
    let (warm, t_warm) = test_matrix(7, 4, cache_again).run();
    assert_eq!(
        t_warm.cells_cached, t_warm.cells_total,
        "second run must be served entirely from cache"
    );
    assert_eq!(artifact_bytes(&cold), artifact_bytes(&warm));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cache_keys_are_stable_across_runs_and_inputs() {
    let id = cell_identity(
        "machine-debug",
        "Nest|Schedutil",
        "gdb",
        1,
        12345,
        600_000_000_000,
    );
    // Stable within a process...
    assert_eq!(cell_key(&id), cell_key(&id));
    // ...and tied to the full identity: every coordinate must matter.
    let variants = [
        cell_identity(
            "other-machine",
            "Nest|Schedutil",
            "gdb",
            1,
            12345,
            600_000_000_000,
        ),
        cell_identity(
            "machine-debug",
            "Cfs|Schedutil",
            "gdb",
            1,
            12345,
            600_000_000_000,
        ),
        cell_identity(
            "machine-debug",
            "Nest|Schedutil",
            "mplayer",
            1,
            12345,
            600_000_000_000,
        ),
        cell_identity(
            "machine-debug",
            "Nest|Schedutil",
            "gdb",
            2,
            12345,
            600_000_000_000,
        ),
        cell_identity(
            "machine-debug",
            "Nest|Schedutil",
            "gdb",
            1,
            54321,
            600_000_000_000,
        ),
        cell_identity(
            "machine-debug",
            "Nest|Schedutil",
            "gdb",
            1,
            12345,
            1_000_000_000,
        ),
    ];
    for v in &variants {
        assert_ne!(cell_key(&id), cell_key(v), "{v}");
    }
    // The identity embeds the schema and crate version, so format changes
    // invalidate old entries rather than deserializing them wrongly.
    assert!(id.contains("schema="));
    assert!(id.contains("version="));
}

#[test]
fn telemetry_is_quarantined_from_deterministic_output() {
    // Telemetry varies run to run (wall clock); the comparison payload
    // must not embed any of it.
    let (comps, telemetry) = test_matrix(3, 2, Cache::disabled()).run();
    let bytes = artifact_bytes(&comps);
    let Telemetry { wall_s, .. } = telemetry;
    assert!(wall_s > 0.0);
    assert!(!bytes.contains("wall_s"));
    assert!(!bytes.contains("cells_cached"));
}
