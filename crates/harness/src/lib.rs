#![deny(missing_docs)]

//! Parallel, deterministic experiment harness for the Nest reproduction.
//!
//! The figure/table binaries describe their `(machine × scheduler ×
//! workload × run)` matrices to a [`Matrix`], which fans the cells across
//! worker threads, serves repeats from a content-addressed on-disk cache,
//! and assembles the same [`Comparison`](nest_core::Comparison)s the old
//! serial loop produced — plus structured JSON artifacts under `results/`.
//!
//! # Determinism contract
//!
//! Results are **byte-identical** for a given base seed regardless of the
//! worker count, cache state, or cell completion order:
//!
//! * each cell's seed is a pure SplitMix hash of its coordinates
//!   ([`cell_seed`]);
//! * each cell's simulation runs entirely inside one worker thread (the
//!   engine's `Rc`/`RefCell` graph is built and dropped there; only the
//!   plain-data [`RunSummary`](nest_metrics::RunSummary) crosses threads);
//! * results land in a slot table by cell index, not completion order.
//!
//! Nondeterministic observations (wall-clock, cache hits) are quarantined
//! in [`Telemetry`] and the separate `results/<figure>.telemetry.json`.
//!
//! # Environment knobs
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `NEST_JOBS` | worker threads | available parallelism |
//! | `NEST_CACHE` | `on` / `off` / `clear` | `on` |
//! | `NEST_CACHE_DIR` | cache directory | `results/cache` |
//! | `NEST_RESULTS_DIR` | artifact directory | `results` |
//! | `NEST_PROGRESS` | `0` silences progress lines | on |
//! | `NEST_WARM_START` | warm-start pause point (simulated seconds) | off |
//!
//! # Example
//!
//! ```
//! use nest_core::experiment::SchedulerSetup;
//! use nest_core::presets;
//! use nest_harness::{Cache, Matrix, Progress};
//! use nest_workloads::configure::Configure;
//!
//! let mut m = Matrix::new("example", 42)
//!     .with_jobs(2)
//!     .with_cache(Cache::disabled())
//!     .with_progress(Progress::quiet());
//! m.add(
//!     presets::xeon_5218(),
//!     &SchedulerSetup::paper_set()[..2],
//!     1,
//!     Box::new(|| Box::new(Configure::named("gdb"))),
//! );
//! let (comparisons, telemetry) = m.run();
//! assert_eq!(comparisons.len(), 1);
//! assert_eq!(telemetry.cells_total, 2);
//! ```

pub mod artifact;
pub mod cache;
pub mod progress;
pub mod runner;

/// The canonical JSON codec (re-exported from `nest-simcore`, where it
/// lives so lower layers like the scenario registry can share it).
pub use nest_simcore::json;

pub use artifact::{comparison_json, results_dir, Artifact};
pub use cache::{Cache, CacheMode};
pub use nest_simcore::json::Json;
pub use progress::Progress;
pub use runner::{
    cell_seed, jobs, run_raw, Matrix, RawCell, Telemetry, WarmStart, WarmTelemetry, WorkloadFactory,
};
