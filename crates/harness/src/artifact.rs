//! Structured JSON artifacts for figures and tables.
//!
//! Every figure binary emits `results/<figure>.json` next to its ASCII
//! output: the run configuration, each comparison with aggregate stats and
//! the per-run summaries behind them, and any figure-specific series. The
//! artifact is *deterministic* — same seed, same bytes, regardless of
//! `NEST_JOBS` or cache state — so artifacts can be diffed across runs and
//! machines. Wall-clock and cache telemetry, which are inherently
//! nondeterministic, go to a separate `results/<figure>.telemetry.json`.

use std::io;
use std::path::{Path, PathBuf};

use nest_core::experiment::{Comparison, SchedulerOutcome};
use nest_metrics::stats::Stats;

use crate::cache::summary_to_json;
use crate::json::{obj, Json};
use crate::runner::Telemetry;

/// Directory artifacts are written to (`results/`, or `NEST_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    std::env::var("NEST_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn stats_json(s: &Stats) -> Json {
    obj(vec![
        ("mean", Json::f64(s.mean)),
        ("std", Json::f64(s.std)),
        ("n", Json::usize(s.n)),
    ])
}

fn row_json(r: &SchedulerOutcome) -> Json {
    obj(vec![
        ("label", Json::str(&r.label)),
        ("time_s", stats_json(&r.time)),
        ("energy_j", stats_json(&r.energy)),
        ("underload_per_s", Json::f64(r.underload_per_s)),
        (
            "speedup_pct",
            r.speedup_pct.as_ref().map_or(Json::Null, stats_json),
        ),
        ("energy_savings_pct", Json::opt_f64(r.energy_savings_pct)),
        ("top_freq_fraction", Json::f64(r.top_freq_fraction)),
        (
            "runs",
            Json::Arr(r.runs.iter().map(summary_to_json).collect()),
        ),
    ])
}

/// Serializes one comparison: workload, machine, one row per scheduler
/// (baseline first) with aggregates and per-run summaries.
pub fn comparison_json(c: &Comparison) -> Json {
    obj(vec![
        ("workload", Json::str(&c.workload)),
        ("machine", Json::str(&c.machine)),
        ("rows", Json::Arr(c.rows.iter().map(row_json).collect())),
    ])
}

/// Builder for one figure's artifact.
///
/// ```
/// use nest_harness::artifact::Artifact;
/// use nest_harness::json::Json;
///
/// let mut a = Artifact::new("fig99_demo", 42);
/// a.push("note", Json::str("demo"));
/// // a.comparisons(&comps); a.write()?; a.write_telemetry(&telemetry)?;
/// ```
#[derive(Debug)]
pub struct Artifact {
    name: String,
    fields: Vec<(String, Json)>,
}

impl Artifact {
    /// Starts an artifact for figure `name` produced with `seed`.
    pub fn new(name: &str, seed: u64) -> Artifact {
        Artifact {
            name: name.to_string(),
            fields: vec![
                ("figure".to_string(), Json::str(name)),
                ("schema".to_string(), Json::u64(1)),
                ("seed".to_string(), Json::u64(seed)),
            ],
        }
    }

    /// Adds a figure-specific field (series, bands, notes …). Fields keep
    /// insertion order, so the artifact is canonical.
    pub fn push(&mut self, key: &str, value: Json) -> &mut Artifact {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Adds the standard `comparisons` array.
    pub fn comparisons(&mut self, comps: &[Comparison]) -> &mut Artifact {
        self.push(
            "comparisons",
            Json::Arr(comps.iter().map(comparison_json).collect()),
        )
    }

    /// Writes the deterministic artifact to `results/<name>.json`,
    /// returning its path.
    pub fn write(&self) -> io::Result<PathBuf> {
        let root = Json::Obj(self.fields.clone());
        write_file(&results_dir().join(format!("{}.json", self.name)), &root)
    }

    /// Writes the nondeterministic run telemetry to
    /// `results/<name>.telemetry.json`, and — when the run carried a
    /// profile (`NEST_PROFILE=1`) — merges it into `results/profile.json`.
    pub fn write_telemetry(&self, t: &Telemetry) -> io::Result<PathBuf> {
        let mut fields = vec![
            ("figure", Json::str(&self.name)),
            ("jobs", Json::usize(t.jobs)),
            ("cells_total", Json::usize(t.cells_total)),
            ("cells_cached", Json::usize(t.cells_cached)),
            ("wall_s", Json::f64(t.wall_s)),
            ("events_total", Json::u64(t.events_total)),
            ("events_per_sec", Json::f64(t.events_per_sec)),
            ("cells_failed", Json::usize(t.failures.len())),
            (
                "failures",
                Json::Arr(
                    t.failures
                        .iter()
                        .map(|f| {
                            obj(vec![
                                ("cell", Json::str(&f.cell)),
                                ("message", Json::str(&f.message)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cells_aborted", Json::usize(t.cells_aborted)),
            ("invariants", t.invariants.to_json()),
            ("decision_metrics", t.decision_metrics.to_json()),
        ];
        // Only serving matrices carry a serve block, so existing figures'
        // telemetry keeps its exact shape.
        if t.serve_metrics.runs > 0 {
            fields.push(("serve_metrics", t.serve_metrics.to_json()));
        }
        // Likewise, only serving matrices carry the latency-attribution
        // block.
        if t.phase_metrics.runs > 0 {
            fields.push(("phase_metrics", t.phase_metrics.to_json()));
        }
        // And only multi-host matrices carry the fleet block.
        if t.fleet_metrics.runs > 0 {
            fields.push(("fleet_metrics", t.fleet_metrics.to_json()));
        }
        // Every simulated cell samples a time series; a fully cached run
        // has none and keeps the pre-sampler telemetry shape.
        if !t.timeseries.is_empty() {
            fields.push((
                "timeseries",
                Json::Arr(
                    t.timeseries
                        .iter()
                        .map(|(cell, ts)| {
                            obj(vec![("cell", Json::str(cell)), ("series", ts.to_json())])
                        })
                        .collect(),
                ),
            ));
            fields.push(("timeseries_dropped", Json::usize(t.timeseries_dropped)));
        }
        // Present only when warm-start was enabled, so default-run
        // telemetry keeps its exact shape too.
        if let Some(w) = &t.warm {
            fields.push(("warm_start", Json::Bool(true)));
            fields.push(("warm_pause_s", Json::f64(w.pause_s)));
            fields.push(("cells_warm", Json::usize(w.cells_warm)));
            fields.push(("warm_events_saved", Json::u64(w.events_saved)));
            fields.push(("warm_snapshots_written", Json::usize(w.snapshots_written)));
        }
        if let Some(p) = &t.profile {
            fields.push(("profile", profile_json(p)));
        }
        let path = write_file(
            &results_dir().join(format!("{}.telemetry.json", self.name)),
            &obj(fields),
        )?;
        if t.profile.is_some() {
            merge_into_profile_artifact(&self.name, t)?;
        }
        Ok(path)
    }
}

/// Serializes a profiler snapshot: per-subsystem calls, wall time, and
/// mean per-call time, in report order, subsystems with no calls omitted.
fn profile_json(p: &nest_simcore::profile::Snapshot) -> Json {
    let subsystems: Vec<Json> = p
        .entries()
        .filter(|(_, t)| t.calls > 0)
        .map(|(name, t)| {
            obj(vec![
                ("name", Json::str(name)),
                ("calls", Json::u64(t.calls)),
                ("wall_ns", Json::u64(t.nanos)),
                ("mean_ns", Json::f64(t.nanos as f64 / t.calls as f64)),
            ])
        })
        .collect();
    obj(vec![
        ("events", Json::u64(p.events)),
        ("subsystems", Json::Arr(subsystems)),
    ])
}

/// Merges one figure's profiled telemetry into `results/profile.json`,
/// which accumulates the latest profile per figure (sorted by figure name
/// so the file is canonical for a given set of runs).
fn merge_into_profile_artifact(figure: &str, t: &Telemetry) -> io::Result<()> {
    let Some(p) = &t.profile else { return Ok(()) };
    let path = results_dir().join("profile.json");
    let mut figures: Vec<(String, Json)> = match std::fs::read_to_string(&path) {
        Ok(text) => match crate::json::parse(&text).map(|j| j.get("figures").cloned()) {
            Ok(Some(Json::Obj(fields))) => fields,
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };
    let entry = obj(vec![
        ("wall_s", Json::f64(t.wall_s)),
        ("events_total", Json::u64(t.events_total)),
        ("events_per_sec", Json::f64(t.events_per_sec)),
        ("profile", profile_json(p)),
    ]);
    match figures.iter_mut().find(|(name, _)| name == figure) {
        Some(slot) => slot.1 = entry,
        None => figures.push((figure.to_string(), entry)),
    }
    figures.sort_by(|a, b| a.0.cmp(&b.0));
    let root = obj(vec![
        ("schema", Json::u64(1)),
        ("figures", Json::Obj(figures)),
    ]);
    write_file(&path, &root)?;
    Ok(())
}

fn write_file(path: &Path, root: &Json) -> io::Result<PathBuf> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut text = root.to_pretty();
    text.push('\n');
    std::fs::write(path, text)?;
    Ok(path.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn artifact_is_canonical_and_parses_back() {
        let mut a = Artifact::new("unit_test_fig", 7);
        a.push("series", Json::Arr(vec![Json::f64(1.5), Json::f64(2.5)]));
        let root = Json::Obj(a.fields.clone());
        let text = root.to_pretty();
        let back = parse(&text).expect("self-produced JSON parses");
        assert_eq!(
            back.get("figure").unwrap().as_str().unwrap(),
            "unit_test_fig"
        );
        assert_eq!(back.get("seed").unwrap().as_u64().unwrap(), 7);
        // Canonical: re-serializing the parse gives the same bytes.
        assert_eq!(back.to_pretty(), text);
    }
}
