//! Progress and timing reporting for matrix runs.
//!
//! Lines go to stderr so the figure's stdout (tables, series) stays clean
//! for redirection. On a terminal the cell counter rewrites one line; when
//! piped it prints coarse milestones instead. `NEST_PROGRESS=0` silences
//! everything.

use std::io::{IsTerminal, Write};
use std::sync::Mutex;

use crate::runner::Telemetry;

/// Reporter shared by the worker pool (all methods take `&self`).
#[derive(Debug)]
pub struct Progress {
    label: String,
    enabled: bool,
    tty: bool,
    last_milestone: Mutex<usize>,
}

impl Progress {
    /// A reporter honoring `NEST_PROGRESS` (unset or `1` = on).
    pub fn from_env(label: &str) -> Progress {
        let enabled = std::env::var("NEST_PROGRESS").map_or(true, |v| v != "0");
        Progress {
            label: label.to_string(),
            enabled,
            tty: std::io::stderr().is_terminal(),
            last_milestone: Mutex::new(0),
        }
    }

    /// A silent reporter (tests).
    pub fn quiet() -> Progress {
        Progress {
            label: String::new(),
            enabled: false,
            tty: false,
            last_milestone: Mutex::new(0),
        }
    }

    /// Records that `done` of `total` cells have completed.
    pub fn cell_done(&self, done: usize, total: usize) {
        if !self.enabled || total == 0 {
            return;
        }
        let mut err = std::io::stderr().lock();
        if self.tty {
            let _ = write!(err, "\r[{}] {done}/{total} cells", self.label);
            if done == total {
                let _ = writeln!(err);
            }
            let _ = err.flush();
        } else {
            // Piped: report at most ten milestones to keep logs short.
            let milestone = done * 10 / total;
            let mut last = self.last_milestone.lock().unwrap();
            if milestone > *last || done == total {
                *last = milestone;
                let _ = writeln!(err, "[{}] {done}/{total} cells", self.label);
            }
        }
    }

    /// Prints the end-of-run summary line.
    pub fn finished(&self, t: &Telemetry) {
        if !self.enabled {
            return;
        }
        eprintln!(
            "[{}] {} cells in {:.2}s ({} jobs, {} cached, {:.0}k events/s)",
            self.label,
            t.cells_total,
            t.wall_s,
            t.jobs,
            t.cells_cached,
            t.events_per_sec / 1e3
        );
        for f in &t.failures {
            eprintln!("[{}] FAILED {}: {}", self.label, f.cell, f.message);
        }
        if t.cells_aborted > 0 {
            eprintln!(
                "[{}] {} cell(s) aborted by a watchdog (partial results)",
                self.label, t.cells_aborted
            );
        }
        if let Some(w) = &t.warm {
            eprintln!(
                "[{}] warm-start@{:.3}s: {} cell(s) resumed ({} events skipped), \
                 {} snapshot(s) written",
                self.label, w.pause_s, w.cells_warm, w.events_saved, w.snapshots_written
            );
        }
        if t.invariants.violations > 0 {
            eprintln!(
                "[{}] WARNING: {} invariant violation(s) — see telemetry",
                self.label, t.invariants.violations
            );
        }
    }
}
