//! The parallel, deterministic experiment runner.
//!
//! A [`Matrix`] holds a list of experiments — each one a `(machine ×
//! scheduler setups × workload × runs)` block — and executes the flattened
//! cell list across worker threads. Three properties make the fan-out
//! safe and reproducible:
//!
//! 1. **Per-cell seeds are pure functions of coordinates.** Every cell's
//!    seed is a SplitMix chain over `(base seed, workload, machine, setup
//!    identity, run index)`, so a cell computes the same result whether it
//!    runs first on one thread or last on sixteen.
//! 2. **Engine graphs never cross threads.** The simulation engine is an
//!    `Rc`/`RefCell` object graph; each worker constructs its workload and
//!    engine locally and only the plain-data [`RunSummary`] escapes.
//! 3. **Results are placed by cell index, not completion order.** Workers
//!    pull cells from an atomic cursor and write into a preallocated slot
//!    table; assembly reads the table in index order.
//!
//! Consequently `NEST_JOBS=1` and `NEST_JOBS=8` produce byte-identical
//! comparisons and artifacts — a property the determinism tests pin down.
//!
//! The runner is also *hardened*: each cell executes under
//! `catch_unwind`, so one panicking simulation is recorded as a failed
//! cell in [`Telemetry`] while every other cell completes; watchdogs
//! from `NEST_EVENT_BUDGET` (deterministic) and `NEST_WATCHDOG_S`
//! (wall-clock) abort runaway cells with partial results; and the
//! always-on invariant checker's tallies are merged into telemetry.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use nest_core::experiment::{Comparison, SchedulerSetup};
use nest_core::snapshot as snap;
use nest_core::{run_once, RunResult, SimConfig};
use nest_faults::FaultPlan;
use nest_metrics::{FleetMetrics, PhaseMetrics, RunSummary, ServeMetrics};
use nest_obs::{DecisionMetrics, InvariantCounts, TimeSeries};
use nest_scenario::{Scenario, ScenarioError};
use nest_simcore::profile;
use nest_simcore::rng::{hash_str, mix64};
use nest_simcore::Time;
use nest_topology::MachineSpec;
use nest_workloads::Workload;

use crate::cache::{cell_identity, cell_key, scenario_cell_identity, Cache};
use crate::json::Json;
use crate::progress::Progress;

/// Warm-start configuration: pause every cold cell at `pause`, snapshot
/// it into `dir`, and let later runs of the same cell restore the
/// snapshot instead of re-simulating the prefix.
///
/// Warm-start never changes results: the determinism suite pins
/// pause/snapshot/restore/continue byte-equal to a straight run, so the
/// comparisons and figure artifacts are identical with it on or off —
/// only wall-clock (and the telemetry describing it) differs. It
/// complements the summary cache: a summary hit skips the whole cell,
/// while a warm hit accelerates cells that must simulate (for example
/// after `NEST_CACHE=off`, a cleared cache, or a bumped cache schema).
#[derive(Clone, Debug)]
pub struct WarmStart {
    /// Simulated time at which cold cells snapshot.
    pub pause: Time,
    /// Directory holding `<key>.snap` files.
    pub dir: PathBuf,
}

impl WarmStart {
    /// Warm-start at `pause` with snapshots under the default directory
    /// (`results/cache/warm`, or `$NEST_CACHE_DIR/warm`).
    pub fn at(pause: Time) -> WarmStart {
        let cache_dir = std::env::var("NEST_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| Path::new("results").join("cache"));
        WarmStart {
            pause,
            dir: cache_dir.join("warm"),
        }
    }

    /// Reads `NEST_WARM_START` (pause point in simulated seconds, > 0);
    /// unset, unparseable, or non-positive means warm-start is off.
    pub fn from_env() -> Option<WarmStart> {
        let secs = std::env::var("NEST_WARM_START")
            .ok()?
            .parse::<f64>()
            .ok()
            .filter(|&s| s > 0.0 && s.is_finite())?;
        Some(WarmStart::at(Time::from_nanos((secs * 1e9) as u64)))
    }

    /// The snapshot identity of one cell: the full cell identity plus the
    /// pause point and the snapshot schema, so a snapshot taken for a
    /// different cell, pause point, or format version can never restore.
    fn identity(&self, cell_id: &str) -> String {
        format!(
            "warm;snap_schema={};pause_ns={};{cell_id}",
            snap::SNAPSHOT_SCHEMA,
            self.pause.as_nanos()
        )
    }

    /// Path of one cell's snapshot file.
    fn path(&self, warm_key: &str) -> PathBuf {
        self.dir.join(format!("{warm_key}.snap"))
    }
}

/// Constructs a fresh workload inside a worker thread. Factories capture
/// only plain specs; the (possibly `Rc`-laden) workload itself never
/// crosses a thread boundary.
pub type WorkloadFactory = Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>;

/// How many per-cell time series one telemetry artifact keeps. Every
/// simulated cell samples a [`TimeSeries`]; keeping them all would make
/// large matrices' telemetry files enormous, so the merge keeps the
/// lexicographically first few by cell label (an order-independent
/// selection) and counts the rest as dropped.
pub const TELEMETRY_TIMESERIES_CAP: usize = 4;

/// Number of worker threads, from `NEST_JOBS` (default: the machine's
/// available parallelism).
pub fn jobs() -> usize {
    std::env::var("NEST_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&j| j > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// One `(machine × setups × workload)` block of the matrix.
struct Experiment {
    machine: MachineSpec,
    setups: Vec<SchedulerSetup>,
    runs: usize,
    workload: String,
    factory: WorkloadFactory,
    /// Per-setup scenario cache scopes, when the block was added via
    /// [`Matrix::add_scenarios`]; cache keys then derive from the
    /// scenario identity instead of the legacy field list.
    scopes: Option<Vec<String>>,
    /// Base-seed override (scenario blocks carry their own seed).
    seed: Option<u64>,
    /// Horizon override (scenario blocks carry their own horizon).
    horizon: Option<Time>,
    /// Fault plan (scenario blocks; the legacy path never injects).
    faults: Option<FaultPlan>,
}

/// One simulation to execute: coordinates plus the derived seed and cache
/// key, all precomputed on the main thread.
struct Cell {
    exp: usize,
    setup: usize,
    run: usize,
    seed: u64,
    key: String,
    /// The canonical identity string behind `key`, kept so warm-start can
    /// derive its own (pause-point-qualified) snapshot identity.
    id: String,
}

/// Execution statistics of one [`Matrix::run`] call. Wall-clock and cache
/// hits vary across hosts and runs, so this lives in the separate
/// telemetry artifact, never in the deterministic figure artifact.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// Worker threads used.
    pub jobs: usize,
    /// Total cells in the matrix.
    pub cells_total: usize,
    /// Cells satisfied from the result cache.
    pub cells_cached: usize,
    /// Wall-clock seconds for the whole matrix.
    pub wall_s: f64,
    /// Simulation events dispatched during the run (cached cells
    /// contribute nothing — their simulations never execute).
    pub events_total: u64,
    /// Engine throughput: `events_total / wall_s`.
    pub events_per_sec: f64,
    /// Scheduling-decision metrics merged (in cell-index order) over the
    /// cells that actually simulated; cache hits contribute nothing, so
    /// on a fully cached run every count is zero.
    pub decision_metrics: DecisionMetrics,
    /// Request-serving metrics merged the same way; all-zero unless some
    /// simulated cell carried serve specs.
    pub serve_metrics: ServeMetrics,
    /// Per-request latency-phase breakdowns merged the same way; all-zero
    /// unless some simulated cell carried serve specs.
    pub phase_metrics: PhaseMetrics,
    /// Multi-host fleet metrics merged the same way; all-zero unless some
    /// simulated cell ran under a `fleet:` front-end.
    pub fleet_metrics: FleetMetrics,
    /// Interval-sampled machine-state series of up to
    /// [`TELEMETRY_TIMESERIES_CAP`] simulated cells, keyed by cell label
    /// and sorted by it (cache hits sample nothing).
    pub timeseries: Vec<(String, TimeSeries)>,
    /// Sampled cells beyond the cap whose series were dropped.
    pub timeseries_dropped: usize,
    /// Per-subsystem profile delta, present when `NEST_PROFILE=1`.
    pub profile: Option<profile::Snapshot>,
    /// Cells whose simulation panicked; the panic was contained and the
    /// rest of the matrix completed. Empty on a healthy run.
    pub failures: Vec<CellFailure>,
    /// Cells a watchdog aborted (partial results kept).
    pub cells_aborted: usize,
    /// Kernel-state invariant tallies merged over the cells that
    /// simulated (cache hits contribute nothing).
    pub invariants: InvariantCounts,
    /// Warm-start accounting, present when warm-start was enabled
    /// (`NEST_WARM_START` or [`Matrix::with_warm_start`]).
    pub warm: Option<WarmTelemetry>,
}

/// Warm-start accounting for one [`Matrix::run`] call.
#[derive(Clone, Debug, Default)]
pub struct WarmTelemetry {
    /// The configured pause point, in simulated seconds.
    pub pause_s: f64,
    /// Cells that resumed from a cached snapshot instead of simulating
    /// their prefix.
    pub cells_warm: usize,
    /// Simulation events skipped by restoring (the sum of each restored
    /// snapshot's dispatched-event tally).
    pub events_saved: u64,
    /// Snapshots written by cold cells this run (warming the next run).
    pub snapshots_written: usize,
}

/// One contained per-cell failure.
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// Which cell failed: `workload/machine/setup[run N]`.
    pub cell: String,
    /// The panic message.
    pub message: String,
}

impl Telemetry {
    /// Whether every cell completed without panicking.
    pub fn all_cells_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Assembles a [`Telemetry`] from a run's bookkeeping plus the profiler
/// delta since `prof_before` (taken at run start).
#[allow(clippy::too_many_arguments)]
fn finish_telemetry(
    jobs: usize,
    cells_total: usize,
    cells_cached: usize,
    started: Instant,
    prof_before: &profile::Snapshot,
    decision_metrics: DecisionMetrics,
    serve_metrics: ServeMetrics,
    phase_metrics: PhaseMetrics,
    fleet_metrics: FleetMetrics,
    timeseries: Vec<(String, TimeSeries)>,
    timeseries_dropped: usize,
    failures: Vec<CellFailure>,
    cells_aborted: usize,
    invariants: InvariantCounts,
    warm: Option<WarmTelemetry>,
) -> Telemetry {
    let wall_s = started.elapsed().as_secs_f64();
    let delta = profile::snapshot().since(prof_before);
    Telemetry {
        jobs,
        cells_total,
        cells_cached,
        wall_s,
        events_total: delta.events,
        events_per_sec: if wall_s > 0.0 {
            delta.events as f64 / wall_s
        } else {
            0.0
        },
        decision_metrics,
        serve_metrics,
        phase_metrics,
        fleet_metrics,
        timeseries,
        timeseries_dropped,
        profile: profile::enabled().then_some(delta),
        failures,
        cells_aborted,
        invariants,
        warm,
    }
}

/// Watchdog limits from the environment: `NEST_EVENT_BUDGET` (events per
/// cell, deterministic) and `NEST_WATCHDOG_S` (wall-clock seconds per
/// cell; aborted results are nondeterministic). Unset means no limit.
pub fn watchdogs_from_env() -> (Option<u64>, Option<std::time::Duration>) {
    let budget = std::env::var("NEST_EVENT_BUDGET")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let wall = std::env::var("NEST_WATCHDOG_S")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(std::time::Duration::from_secs);
    (budget, wall)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The deterministic seed of one cell.
///
/// A SplitMix chain over every coordinate: independent workloads, machines,
/// setups, and runs get statistically independent streams, and the value
/// depends on nothing but the coordinates themselves.
pub fn cell_seed(
    base: u64,
    workload: &str,
    machine: &str,
    setup_identity: &str,
    run: usize,
) -> u64 {
    let mut s = mix64(base, hash_str(workload));
    s = mix64(s, hash_str(machine));
    s = mix64(s, hash_str(setup_identity));
    mix64(s, run as u64)
}

/// What one successfully executed cell produced.
struct CellDone {
    summary: RunSummary,
    cached: bool,
    aborted: bool,
    decision: Option<DecisionMetrics>,
    serve: Option<ServeMetrics>,
    phases: Option<PhaseMetrics>,
    fleet: Option<FleetMetrics>,
    timeseries: Option<TimeSeries>,
    invariants: Option<InvariantCounts>,
    /// `Some(events)` when the cell resumed from a warm snapshot that had
    /// already dispatched `events` events.
    warm_restored: Option<u64>,
    /// Whether the cell wrote a warm snapshot for future runs.
    warm_written: bool,
}

/// A batch of experiments executed together across one worker pool.
pub struct Matrix {
    base_seed: u64,
    jobs: usize,
    cache: Cache,
    progress: Progress,
    warm: Option<WarmStart>,
    experiments: Vec<Experiment>,
}

impl Matrix {
    /// A matrix configured from the environment: `NEST_JOBS` workers and
    /// the `NEST_CACHE` cache policy. `label` names the figure in progress
    /// output.
    pub fn new(label: &str, base_seed: u64) -> Matrix {
        Matrix {
            base_seed,
            jobs: jobs(),
            cache: Cache::from_env(),
            progress: Progress::from_env(label),
            warm: WarmStart::from_env(),
            experiments: Vec::new(),
        }
    }

    /// Overrides the worker count (tests use this to pin `jobs`).
    pub fn with_jobs(mut self, jobs: usize) -> Matrix {
        self.jobs = jobs.max(1);
        self
    }

    /// Overrides the cache (tests use a disabled or scratch cache).
    pub fn with_cache(mut self, cache: Cache) -> Matrix {
        self.cache = cache;
        self
    }

    /// Overrides the progress reporter (tests silence it).
    pub fn with_progress(mut self, progress: Progress) -> Matrix {
        self.progress = progress;
        self
    }

    /// Overrides the warm-start configuration (`None` disables it
    /// regardless of `NEST_WARM_START`).
    pub fn with_warm_start(mut self, warm: Option<WarmStart>) -> Matrix {
        self.warm = warm;
        self
    }

    /// Adds one experiment: run `factory`'s workload under every setup on
    /// `machine`, `runs` times each. Experiments appear in the result in
    /// the order they were added.
    pub fn add(
        &mut self,
        machine: MachineSpec,
        setups: &[SchedulerSetup],
        runs: usize,
        factory: WorkloadFactory,
    ) -> &mut Matrix {
        assert!(!setups.is_empty(), "experiment needs at least one setup");
        assert!(runs > 0, "experiment needs at least one run");
        let workload = factory().name();
        self.experiments.push(Experiment {
            machine,
            setups: setups.to_vec(),
            runs,
            workload,
            factory,
            scopes: None,
            seed: None,
            horizon: None,
            faults: None,
        });
        self
    }

    /// Adds one experiment described by [`Scenario`]s: one comparison row
    /// per scenario, in input order. The scenarios must agree on
    /// everything but policy and governor (one block = one machine, one
    /// workload, one seed/runs/horizon), mirroring how the paper compares
    /// scheduler setups on otherwise identical experiments.
    ///
    /// Cell seeds derive from the same coordinates `add` uses — workload
    /// name, machine name, setup Debug identity — so a scenario-built
    /// block reproduces a hand-wired one bit for bit. Cache keys,
    /// however, scope on the scenario's canonical identity string, which
    /// extends caching to any expressible scenario.
    pub fn add_scenarios(&mut self, scenarios: &[Scenario]) -> Result<&mut Matrix, ScenarioError> {
        let first = scenarios
            .first()
            .ok_or_else(|| ScenarioError::MalformedSpec {
                spec: String::new(),
                reason: "experiment needs at least one scenario".into(),
            })?;
        for s in scenarios {
            let shared = (
                s.machine(),
                s.workload(),
                s.seed(),
                s.runs(),
                s.horizon_s(),
                s.faults(),
            );
            let want = (
                first.machine(),
                first.workload(),
                first.seed(),
                first.runs(),
                first.horizon_s(),
                first.faults(),
            );
            if shared != want {
                return Err(ScenarioError::MalformedSpec {
                    spec: s.identity(),
                    reason: format!(
                        "scenarios in one experiment must share machine, workload, \
                         seed, runs, horizon, and faults (expected those of \"{}\")",
                        first.identity()
                    ),
                });
            }
        }
        let workload_spec = first.workload_spec();
        let workload = workload_spec.name();
        self.experiments.push(Experiment {
            machine: first.resolve_machine(),
            setups: scenarios.iter().map(|s| s.setup()).collect(),
            runs: first.runs(),
            workload,
            factory: Box::new(move || workload_spec.build()),
            scopes: Some(scenarios.iter().map(|s| s.cache_scope()).collect()),
            seed: Some(first.seed()),
            horizon: Some(Time::from_secs(first.horizon_s())),
            faults: Some(first.resolve_faults()),
        });
        Ok(self)
    }

    fn flatten(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for (ei, e) in self.experiments.iter().enumerate() {
            let machine_debug = format!("{:?}", e.machine);
            let base_seed = e.seed.unwrap_or(self.base_seed);
            let horizon_ns = e
                .horizon
                .unwrap_or_else(|| SimConfig::new(e.machine.clone()).horizon)
                .as_nanos();
            for (si, s) in e.setups.iter().enumerate() {
                let identity = s.identity();
                for run in 0..e.runs {
                    let seed = cell_seed(base_seed, &e.workload, &e.machine.name, &identity, run);
                    let cell_id = match &e.scopes {
                        Some(scopes) => {
                            scenario_cell_identity(&scopes[si], &machine_debug, run, seed)
                        }
                        None => cell_identity(
                            &machine_debug,
                            &identity,
                            &e.workload,
                            run,
                            seed,
                            horizon_ns,
                        ),
                    };
                    cells.push(Cell {
                        exp: ei,
                        setup: si,
                        run,
                        seed,
                        key: cell_key(&cell_id),
                        id: cell_id,
                    });
                }
            }
        }
        cells
    }

    /// Executes every cell and assembles one [`Comparison`] per experiment
    /// (in insertion order), plus run telemetry.
    pub fn run(&self) -> (Vec<Comparison>, Telemetry) {
        let started = Instant::now();
        let prof_before = profile::snapshot();
        let cells = self.flatten();
        let total = cells.len();
        type Slot = Option<Result<CellDone, String>>;
        let slots: Mutex<Vec<Slot>> = Mutex::new((0..total).map(|_| None).collect());
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let workers = self.jobs.min(total.max(1));

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    // One panicking simulation must not take down the
                    // matrix: contain it and record the cell as failed.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.execute(cell)
                    }))
                    .map_err(panic_message);
                    slots.lock().unwrap()[i] = Some(outcome);
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    self.progress.cell_done(n, total);
                });
            }
        });

        let mut slots = slots.into_inner().unwrap();
        // Cells were flattened experiment-major, setup-major, run-minor;
        // consume the slot table back in the same index order.
        let mut per_exp: Vec<Vec<Vec<RunSummary>>> = self
            .experiments
            .iter()
            .map(|e| {
                e.setups
                    .iter()
                    .map(|_| Vec::with_capacity(e.runs))
                    .collect()
            })
            .collect();
        // Decision metrics are all order-independent sums, but fold them
        // in slot-index order anyway — same discipline as the summaries.
        let mut decision_metrics = DecisionMetrics::default();
        let mut serve_metrics = ServeMetrics::default();
        let mut phase_metrics = PhaseMetrics::default();
        let mut fleet_metrics = FleetMetrics::default();
        let mut all_series: Vec<(String, TimeSeries)> = Vec::new();
        let mut invariants = InvariantCounts {
            completed: true,
            ..InvariantCounts::default()
        };
        let mut failures = Vec::new();
        let mut cached = 0;
        let mut aborted = 0;
        let mut warm = self.warm.as_ref().map(|w| WarmTelemetry {
            pause_s: w.pause.as_secs_f64(),
            ..WarmTelemetry::default()
        });
        for (i, cell) in cells.iter().enumerate() {
            let e = &self.experiments[cell.exp];
            match slots[i].take().expect("cell executed") {
                Ok(done) => {
                    if done.cached {
                        cached += 1;
                    }
                    if done.aborted {
                        aborted += 1;
                    }
                    if let Some(w) = warm.as_mut() {
                        if let Some(events) = done.warm_restored {
                            w.cells_warm += 1;
                            w.events_saved += events;
                        }
                        if done.warm_written {
                            w.snapshots_written += 1;
                        }
                    }
                    if let Some(d) = done.decision {
                        decision_metrics.merge(&d);
                    }
                    if let Some(s) = done.serve {
                        serve_metrics.merge(&s);
                    }
                    if let Some(p) = done.phases {
                        phase_metrics.merge(&p);
                    }
                    if let Some(f) = done.fleet {
                        fleet_metrics.merge(&f);
                    }
                    if let Some(ts) = done.timeseries {
                        if !ts.is_empty() {
                            let label = format!(
                                "{}/{}/{}[run {}]",
                                e.workload,
                                e.machine.name,
                                e.setups[cell.setup].label(),
                                cell.run
                            );
                            all_series.push((label, ts));
                        }
                    }
                    if let Some(inv) = done.invariants {
                        invariants.merge(&inv);
                    }
                    per_exp[cell.exp][cell.setup].push(done.summary);
                }
                Err(message) => failures.push(CellFailure {
                    cell: format!(
                        "{}/{}/{}[run {}]",
                        e.workload,
                        e.machine.name,
                        e.setups[cell.setup].label(),
                        cell.run
                    ),
                    message,
                }),
            }
        }
        // A comparison needs at least one surviving run per setup; an
        // experiment that lost a whole setup is dropped (and recorded),
        // while every other experiment's section is kept.
        let mut comparisons = Vec::new();
        for (e, summaries) in self.experiments.iter().zip(per_exp) {
            if summaries.iter().all(|runs| !runs.is_empty()) {
                comparisons.push(Comparison::from_summaries(
                    &e.workload,
                    &e.machine.name,
                    &e.setups,
                    summaries,
                ));
            } else {
                failures.push(CellFailure {
                    cell: format!("{}/{}", e.workload, e.machine.name),
                    message: "every run of at least one setup failed; comparison dropped"
                        .to_string(),
                });
            }
        }

        all_series.sort_by(|a, b| a.0.cmp(&b.0));
        let timeseries_dropped = all_series.len().saturating_sub(TELEMETRY_TIMESERIES_CAP);
        all_series.truncate(TELEMETRY_TIMESERIES_CAP);
        // Keep the warm snapshot directory within its configured budget.
        // Eviction happens after the run, so this run's warm hits were
        // unaffected; the oldest snapshots lose their head start first.
        if let (Some(w), Some(cap)) = (&self.warm, warm_cache_cap_from_env()) {
            prune_warm_cache(&w.dir, cap);
        }
        let telemetry = finish_telemetry(
            workers,
            total,
            cached,
            started,
            &prof_before,
            decision_metrics,
            serve_metrics,
            phase_metrics,
            fleet_metrics,
            all_series,
            timeseries_dropped,
            failures,
            aborted,
            invariants,
            warm,
        );
        self.progress.finished(&telemetry);
        (comparisons, telemetry)
    }

    /// Runs one cell: cache lookup, else simulate and store. Cache hits
    /// carry no decision metrics or invariant tallies (the simulation
    /// never executed).
    fn execute(&self, cell: &Cell) -> CellDone {
        if let Some(hit) = self.cache.lookup(&cell.key) {
            return CellDone {
                summary: hit,
                cached: true,
                aborted: false,
                decision: None,
                serve: None,
                phases: None,
                fleet: None,
                timeseries: None,
                invariants: None,
                warm_restored: None,
                warm_written: false,
            };
        }
        let e = &self.experiments[cell.exp];
        let setup = &e.setups[cell.setup];
        let (event_budget, wall_limit) = watchdogs_from_env();
        let mut cfg = SimConfig::new(e.machine.clone())
            .policy(setup.policy.clone())
            .governor(setup.governor)
            .seed(cell.seed)
            .event_budget(event_budget)
            .wall_limit(wall_limit);
        if let Some(h) = e.horizon {
            cfg = cfg.horizon(h);
        }
        if let Some(f) = &e.faults {
            cfg = cfg.faults(f.clone());
        }
        let workload = (e.factory)();
        let mut warm_restored = None;
        let mut warm_written = false;
        let result = match &self.warm {
            Some(w) => self
                .simulate_warm(w, cell, &cfg, workload.as_ref())
                .map(|(result, restored, written)| {
                    warm_restored = restored;
                    warm_written = written;
                    result
                })
                // No snapshot and the run finished before the pause point
                // — `simulate_warm` already produced the full result.
                .unwrap_or_else(|r| *r),
            None => run_once(&cfg, workload.as_ref()),
        };
        let summary = result.summarize();
        // An aborted (watchdog-cut) cell keeps its partial summary but
        // is never cached: a rerun with a different budget must recompute.
        if !result.aborted {
            self.cache.store(&cell.key, &summary);
        }
        CellDone {
            summary,
            cached: false,
            aborted: result.aborted,
            decision: Some(result.decision),
            serve: Some(result.serve),
            phases: Some(result.phases),
            fleet: result.fleet.map(|f| f.metrics),
            timeseries: Some(result.timeseries),
            invariants: Some(result.invariants),
            warm_restored,
            warm_written,
        }
    }

    /// Simulates one cell under warm-start: restore the cell's snapshot
    /// if a valid one exists, else run to the pause point, snapshot, and
    /// continue. Returns `Err(result)` when the simulation finished
    /// before the pause point (nothing to snapshot).
    ///
    /// Snapshot trouble is never fatal: an unreadable, corrupt, or
    /// mismatched snapshot is deleted and the cell re-simulates from
    /// scratch (exactly like a result-cache miss), and a failed write
    /// only costs the next run its warm hit.
    fn simulate_warm(
        &self,
        w: &WarmStart,
        cell: &Cell,
        cfg: &SimConfig,
        workload: &dyn Workload,
    ) -> Result<(RunResult, Option<u64>, bool), Box<RunResult>> {
        let identity = w.identity(&cell.id);
        let path = w.path(&cell_key(&identity));
        if let Ok(text) = std::fs::read_to_string(&path) {
            match snap::restore(cfg, workload, &text, &identity) {
                Ok(paused) => {
                    let events = paused.events_dispatched();
                    return Ok((paused.resume(), Some(events), false));
                }
                // Corruption or a stale identity is a miss, never an
                // error: drop the bad file and fall through to simulate.
                Err(_) => {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        match snap::run_until(cfg, workload, w.pause) {
            snap::Progress::Done(result) => Err(result),
            snap::Progress::Paused(paused) => {
                let written = match paused.snapshot(&identity, Json::Null) {
                    Ok(text) => write_snapshot(&w.dir, &path, &text),
                    Err(_) => false,
                };
                Ok((paused.resume(), None, written))
            }
        }
    }
}

/// Atomically writes one warm snapshot (temp file + rename, the same
/// discipline as cache entries: concurrent writers of one key produce
/// identical bytes, so last-rename-wins is safe). Returns success.
fn write_snapshot(dir: &Path, path: &Path, text: &str) -> bool {
    if std::fs::create_dir_all(dir).is_err() {
        return false;
    }
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    let tmp = dir.join(format!("{name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, path).is_ok()
}

/// Warm-cache size cap in bytes, from `NEST_WARM_CACHE_MB` (whole
/// megabytes; unset or unparseable means uncapped). `0` is a valid cap:
/// it evicts every snapshot, effectively disabling the warm cache
/// without turning warm-start itself off.
pub fn warm_cache_cap_from_env() -> Option<u64> {
    std::env::var("NEST_WARM_CACHE_MB")
        .ok()?
        .parse::<u64>()
        .ok()
        .map(|mb| mb.saturating_mul(1024 * 1024))
}

/// Prunes the warm snapshot directory down to at most `cap_bytes` of
/// `.snap` files by deleting the oldest-modified first (ties broken by
/// file name, so the order is deterministic on coarse-grained
/// filesystems). Non-snapshot files are never touched. Returns how many
/// snapshots were evicted.
pub fn prune_warm_cache(dir: &Path, cap_bytes: u64) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut snaps: Vec<(std::time::SystemTime, String, PathBuf, u64)> = Vec::new();
    let mut total: u64 = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("snap") {
            continue;
        }
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        total += meta.len();
        snaps.push((
            mtime,
            entry.file_name().to_string_lossy().into_owned(),
            path,
            meta.len(),
        ));
    }
    snaps.sort();
    let mut evicted = 0;
    for (_, _, path, len) in snaps {
        if total <= cap_bytes {
            break;
        }
        if std::fs::remove_file(&path).is_ok() {
            total = total.saturating_sub(len);
            evicted += 1;
        }
    }
    evicted
}

/// One raw simulation for trace figures (2, 3, 8): full [`RunResult`]s are
/// too heavy to cache but the fan-out and seed discipline still apply.
pub struct RawCell {
    /// Fully-specified configuration (seed already derived by the caller).
    pub cfg: SimConfig,
    /// Workload constructor, invoked inside the worker.
    pub make: WorkloadFactory,
}

/// Executes raw cells across `jobs` workers, returning results in input
/// order plus run telemetry (raw cells never hit the cache). Used by the
/// trace figures, which consume full [`RunResult`]s (execution traces,
/// raw latency samples) that the caching path drops.
pub fn run_raw(cells: Vec<RawCell>, jobs: usize) -> (Vec<RunResult>, Telemetry) {
    let started = Instant::now();
    let prof_before = profile::snapshot();
    let total = cells.len();
    let slots: Mutex<Vec<Option<RunResult>>> = Mutex::new((0..total).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    let workers = jobs.max(1).min(total.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let workload = (cell.make)();
                let result = run_once(&cell.cfg, workload.as_ref());
                slots.lock().unwrap()[i] = Some(result);
            });
        }
    });
    let results: Vec<RunResult> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("raw cell executed"))
        .collect();
    let mut decision_metrics = DecisionMetrics::default();
    let mut serve_metrics = ServeMetrics::default();
    let mut phase_metrics = PhaseMetrics::default();
    let mut fleet_metrics = FleetMetrics::default();
    let mut all_series: Vec<(String, TimeSeries)> = Vec::new();
    let mut invariants = InvariantCounts {
        completed: true,
        ..InvariantCounts::default()
    };
    for (i, r) in results.iter().enumerate() {
        decision_metrics.merge(&r.decision);
        serve_metrics.merge(&r.serve);
        phase_metrics.merge(&r.phases);
        if let Some(f) = &r.fleet {
            fleet_metrics.merge(&f.metrics);
        }
        if !r.timeseries.is_empty() && all_series.len() < TELEMETRY_TIMESERIES_CAP {
            all_series.push((format!("cell {i}"), r.timeseries.clone()));
        }
        invariants.merge(&r.invariants);
    }
    let timeseries_dropped = results
        .iter()
        .filter(|r| !r.timeseries.is_empty())
        .count()
        .saturating_sub(all_series.len());
    let telemetry = finish_telemetry(
        workers,
        total,
        0,
        started,
        &prof_before,
        decision_metrics,
        serve_metrics,
        phase_metrics,
        fleet_metrics,
        all_series,
        timeseries_dropped,
        Vec::new(),
        results.iter().filter(|r| r.aborted).count(),
        invariants,
        None,
    );
    (results, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nest_core::Governor;
    use nest_core::PolicyKind;
    use nest_topology::presets;
    use nest_workloads::configure::Configure;

    fn gdb_factory() -> WorkloadFactory {
        Box::new(|| Box::new(Configure::named("gdb")))
    }

    fn small_matrix(jobs: usize) -> Matrix {
        let mut m = Matrix::new("test", 7)
            .with_jobs(jobs)
            .with_cache(Cache::disabled())
            .with_progress(Progress::quiet());
        m.add(
            presets::xeon_5218(),
            &[
                SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil),
                SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil),
            ],
            2,
            gdb_factory(),
        );
        m
    }

    #[test]
    fn cell_seed_is_coordinate_pure() {
        let a = cell_seed(42, "w", "m", "s", 0);
        assert_eq!(a, cell_seed(42, "w", "m", "s", 0));
        assert_ne!(a, cell_seed(43, "w", "m", "s", 0));
        assert_ne!(a, cell_seed(42, "x", "m", "s", 0));
        assert_ne!(a, cell_seed(42, "w", "n", "s", 0));
        assert_ne!(a, cell_seed(42, "w", "m", "t", 0));
        assert_ne!(a, cell_seed(42, "w", "m", "s", 1));
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let (serial, t1) = small_matrix(1).run();
        let (parallel, t4) = small_matrix(4).run();
        assert_eq!(t1.jobs, 1);
        assert_eq!(t4.jobs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.workload, b.workload);
            for (ra, rb) in a.rows.iter().zip(&b.rows) {
                assert_eq!(ra.runs, rb.runs, "{}", ra.label);
                assert_eq!(ra.time.mean, rb.time.mean);
            }
        }
    }

    #[test]
    fn telemetry_carries_decision_metrics() {
        let (_, t) = small_matrix(2).run();
        // Cache disabled: every cell simulated, so every run contributed.
        assert_eq!(t.decision_metrics.runs as usize, t.cells_total);
        assert!(t.decision_metrics.total_placements() > 0);
        assert!(t.decision_metrics.sim_ns > 0);
        // The Nest rows must have produced nest-lifecycle transitions.
        assert!(t.decision_metrics.nest_transitions > 0);
    }

    #[test]
    fn scenario_block_reproduces_hand_wired_block() {
        // The same experiment, described twice: once with hand-wired
        // setups + factory, once as scenarios. Comparisons must be
        // bit-identical — the byte-identity contract of the refactor.
        let (legacy, _) = small_matrix(2).run();

        let base = Scenario::parse("5218", "cfs", "schedutil", "configure:gdb")
            .unwrap()
            .with_seed(7)
            .with_runs(2);
        let nest = Scenario::parse("5218", "nest", "sched", "configure:gdb")
            .unwrap()
            .with_seed(7)
            .with_runs(2);
        let mut m = Matrix::new("test-scenario", 7)
            .with_jobs(2)
            .with_cache(Cache::disabled())
            .with_progress(Progress::quiet());
        m.add_scenarios(&[base, nest]).unwrap();
        let (scenic, _) = m.run();

        assert_eq!(legacy.len(), scenic.len());
        for (a, b) in legacy.iter().zip(&scenic) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.machine, b.machine);
            for (ra, rb) in a.rows.iter().zip(&b.rows) {
                assert_eq!(ra.label, rb.label);
                assert_eq!(ra.runs.len(), rb.runs.len());
                for (sa, sb) in ra.runs.iter().zip(&rb.runs) {
                    assert_eq!(sa, sb, "{}", ra.label);
                }
            }
        }
    }

    #[test]
    fn mismatched_scenario_blocks_are_rejected() {
        let a = Scenario::parse("5218", "cfs", "sched", "configure:gdb").unwrap();
        let b = Scenario::parse("6130-2", "nest", "sched", "configure:gdb").unwrap();
        let mut m = Matrix::new("test-mismatch", 7)
            .with_cache(Cache::disabled())
            .with_progress(Progress::quiet());
        assert!(m.add_scenarios(&[a.clone(), b]).is_err());
        assert!(m.add_scenarios(&[]).is_err());
        let c = a.clone().with_runs(5);
        assert!(m.add_scenarios(&[a, c]).is_err());
    }

    #[test]
    fn a_panicking_cell_is_contained_and_reported() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        /// Panics on the Nth build; other builds delegate to configure:gdb.
        struct PanicOnNth {
            counter: Arc<AtomicUsize>,
            nth: usize,
        }
        impl nest_workloads::Workload for PanicOnNth {
            fn name(&self) -> String {
                "panic_on_nth".to_string()
            }
            fn build(
                &self,
                setup: &mut dyn nest_simcore::SimSetup,
                rng: &mut nest_simcore::SimRng,
            ) -> Vec<nest_simcore::TaskSpec> {
                if self.counter.fetch_add(1, Ordering::SeqCst) + 1 == self.nth {
                    panic!("injected cell failure");
                }
                Configure::named("gdb").build(setup, rng)
            }
        }

        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let mut m = Matrix::new("test-panic", 7)
            .with_jobs(1)
            .with_cache(Cache::disabled())
            .with_progress(Progress::quiet());
        m.add(
            presets::xeon_5218(),
            &[
                SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil),
                SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil),
            ],
            2,
            Box::new(move || {
                Box::new(PanicOnNth {
                    counter: Arc::clone(&c2),
                    nth: 2,
                })
            }),
        );
        let (comps, t) = m.run();
        assert_eq!(t.failures.len(), 1, "exactly one cell failed");
        assert!(t.failures[0].message.contains("injected cell failure"));
        assert!(
            t.failures[0].cell.contains("run 1"),
            "{}",
            t.failures[0].cell
        );
        assert!(!t.all_cells_ok());
        // The other three cells completed and still assemble: the CFS row
        // keeps its surviving run, the Nest row both.
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].rows[0].runs.len(), 1);
        assert_eq!(comps[0].rows[1].runs.len(), 2);
    }

    #[test]
    fn losing_every_run_of_a_setup_drops_the_comparison() {
        struct AlwaysPanics;
        impl nest_workloads::Workload for AlwaysPanics {
            fn name(&self) -> String {
                "always_panics".to_string()
            }
            fn build(
                &self,
                _setup: &mut dyn nest_simcore::SimSetup,
                _rng: &mut nest_simcore::SimRng,
            ) -> Vec<nest_simcore::TaskSpec> {
                panic!("doomed workload");
            }
        }
        let mut m = Matrix::new("test-doomed", 7)
            .with_jobs(2)
            .with_cache(Cache::disabled())
            .with_progress(Progress::quiet());
        m.add(
            presets::xeon_5218(),
            &[SchedulerSetup::new(PolicyKind::Cfs, Governor::Schedutil)],
            2,
            Box::new(|| Box::new(AlwaysPanics)),
        );
        // A healthy second experiment must survive untouched.
        m.add(
            presets::xeon_5218(),
            &[SchedulerSetup::new(PolicyKind::Nest, Governor::Schedutil)],
            1,
            gdb_factory(),
        );
        let (comps, t) = m.run();
        assert_eq!(comps.len(), 1, "doomed comparison dropped, healthy kept");
        assert_eq!(comps[0].workload, "gdb");
        // Two cell failures plus the dropped-comparison record.
        assert_eq!(t.failures.len(), 3);
    }

    #[test]
    fn telemetry_merges_invariant_counts() {
        let (_, t) = small_matrix(2).run();
        assert_eq!(t.invariants.violations, 0, "{:?}", t.invariants);
        assert!(t.invariants.events_checked > 0);
        assert!(t.invariants.completed);
    }

    #[test]
    fn scenario_blocks_carry_their_fault_plan() {
        let free = Scenario::parse("5218", "nest", "sched", "configure:gdb")
            .unwrap()
            .with_seed(7)
            .with_runs(1);
        let faulted = free
            .clone()
            .with_faults("faults:hotplug=2@50ms:100ms,throttle=s0:0.6")
            .unwrap();
        let run_one = |s: &Scenario| {
            let mut m = Matrix::new("test-faults", 7)
                .with_jobs(1)
                .with_cache(Cache::disabled())
                .with_progress(Progress::quiet());
            m.add_scenarios(std::slice::from_ref(s)).unwrap();
            m.run()
        };
        let (a, ta) = run_one(&free);
        let (b, tb) = run_one(&faulted);
        assert_ne!(
            a[0].rows[0].time.mean, b[0].rows[0].time.mean,
            "fault plan must reach the simulation"
        );
        assert_eq!(ta.invariants.violations, 0);
        assert_eq!(tb.invariants.violations, 0, "{:?}", tb.invariants);

        // Mixed fault plans in one block are rejected.
        let mut m = Matrix::new("test-mixed", 7)
            .with_cache(Cache::disabled())
            .with_progress(Progress::quiet());
        assert!(m.add_scenarios(&[free, faulted]).is_err());
    }

    fn assert_same_comparisons(a: &[Comparison], b: &[Comparison]) {
        assert_eq!(a.len(), b.len());
        for (ca, cb) in a.iter().zip(b) {
            assert_eq!(ca.workload, cb.workload);
            for (ra, rb) in ca.rows.iter().zip(&cb.rows) {
                assert_eq!(ra.label, rb.label);
                assert_eq!(ra.runs, rb.runs, "{}", ra.label);
            }
        }
    }

    fn warm_at(dir: &std::path::Path) -> Option<WarmStart> {
        Some(WarmStart {
            pause: Time::from_millis(40),
            dir: dir.to_path_buf(),
        })
    }

    #[test]
    fn warm_start_changes_no_results_and_skips_the_prefix() {
        let dir = std::env::temp_dir().join(format!(
            "nest-warm-test-{}-{:x}",
            std::process::id(),
            nest_simcore::rng::splitmix64(0x3A3A)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let (cold, tc) = small_matrix(2).with_warm_start(None).run();
        assert!(tc.warm.is_none(), "warm-start off leaves telemetry bare");

        // First warm run: no snapshots yet, every cell simulates in full
        // but pauses, snapshots, and resumes — results must not move.
        let (first, t1) = small_matrix(2).with_warm_start(warm_at(&dir)).run();
        let w1 = t1.warm.expect("warm telemetry present");
        assert_eq!(w1.cells_warm, 0, "nothing to restore on the first run");
        assert_eq!(w1.snapshots_written, t1.cells_total);
        assert_eq!(w1.events_saved, 0);
        assert_same_comparisons(&cold, &first);

        // Second warm run: every cell restores its snapshot and resumes —
        // same results again, with the prefix's events skipped.
        let (second, t2) = small_matrix(2).with_warm_start(warm_at(&dir)).run();
        let w2 = t2.warm.expect("warm telemetry present");
        assert_eq!(w2.cells_warm, t2.cells_total, "every cell restored");
        assert!(w2.events_saved > 0, "restores skip dispatched events");
        assert_eq!(w2.snapshots_written, 0, "snapshots already on disk");
        assert_same_comparisons(&cold, &second);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_warm_snapshots_fall_back_to_cold_simulation() {
        let dir = std::env::temp_dir().join(format!(
            "nest-warm-corrupt-{}-{:x}",
            std::process::id(),
            nest_simcore::rng::splitmix64(0xBAD5)
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let (first, _) = small_matrix(1).with_warm_start(warm_at(&dir)).run();
        let mut snaps = 0;
        for entry in std::fs::read_dir(&dir).expect("warm dir exists") {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "snap") {
                std::fs::write(&path, "not a snapshot").unwrap();
                snaps += 1;
            }
        }
        assert!(snaps > 0, "first run wrote snapshots");

        // Corruption is a warm miss: cells re-simulate from scratch,
        // results hold, and fresh snapshots replace the bad files.
        let (second, t2) = small_matrix(1).with_warm_start(warm_at(&dir)).run();
        let w2 = t2.warm.expect("warm telemetry present");
        assert_eq!(w2.cells_warm, 0, "corrupt snapshots never restore");
        assert_eq!(w2.snapshots_written, t2.cells_total);
        assert_same_comparisons(&first, &second);

        // And the rewritten snapshots restore on the third run.
        let (third, t3) = small_matrix(1).with_warm_start(warm_at(&dir)).run();
        assert_eq!(t3.warm.expect("warm").cells_warm, t3.cells_total);
        assert_same_comparisons(&first, &third);

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_start_pause_past_the_end_degrades_gracefully() {
        let dir = std::env::temp_dir().join(format!(
            "nest-warm-late-{}-{:x}",
            std::process::id(),
            nest_simcore::rng::splitmix64(0x1A7E)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let warm = Some(WarmStart {
            // Far beyond any gdb run: every cell completes before the
            // pause, so nothing is snapshotted and nothing restores.
            pause: Time::from_secs(10_000),
            dir: dir.clone(),
        });
        let (cold, _) = small_matrix(1).with_warm_start(None).run();
        let (warm_run, t) = small_matrix(1).with_warm_start(warm.clone()).run();
        let w = t.warm.expect("warm telemetry present");
        assert_eq!(w.cells_warm, 0);
        assert_eq!(w.snapshots_written, 0);
        assert_same_comparisons(&cold, &warm_run);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_cache_cap_evicts_oldest_snapshots_first() {
        let dir = std::env::temp_dir().join(format!(
            "nest-warm-cap-{}-{:x}",
            std::process::id(),
            nest_simcore::rng::splitmix64(0xCA9B)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Four 100-byte snapshots with staggered ages (b and c share an
        // mtime, so the name breaks the tie), plus a bystander file the
        // pruner must never touch.
        let base = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        let stamp = |name: &str, age_back_s: u64| {
            let path = dir.join(name);
            std::fs::write(&path, [0u8; 100]).unwrap();
            let f = std::fs::File::options().write(true).open(&path).unwrap();
            f.set_modified(base - std::time::Duration::from_secs(age_back_s))
                .unwrap();
        };
        stamp("a.snap", 30); // oldest → evicted first
        stamp("c.snap", 20); // tied with b; "b" sorts first
        stamp("b.snap", 20);
        stamp("d.snap", 10); // newest → kept longest
        stamp("not-a-snapshot.txt", 99);

        // Cap of 250 bytes over 400 bytes of snapshots: evict a (oldest),
        // then b (tie broken by name) — 200 bytes remain.
        assert_eq!(prune_warm_cache(&dir, 250), 2);
        assert!(!dir.join("a.snap").exists());
        assert!(!dir.join("b.snap").exists());
        assert!(dir.join("c.snap").exists());
        assert!(dir.join("d.snap").exists());
        assert!(dir.join("not-a-snapshot.txt").exists());

        // Already under budget: nothing more to do.
        assert_eq!(prune_warm_cache(&dir, 250), 0);
        // A zero cap empties the snapshot set but spares other files.
        assert_eq!(prune_warm_cache(&dir, 0), 2);
        assert!(dir.join("not-a-snapshot.txt").exists());

        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn warm_start_env_parses() {
        // Pure parsing helpers — no env mutation (tests run in parallel).
        let w = WarmStart::at(Time::from_millis(250));
        assert_eq!(w.pause.as_nanos(), 250_000_000);
        let id_a = w.identity("cell-a");
        assert_ne!(id_a, w.identity("cell-b"));
        assert!(id_a.contains("pause_ns=250000000"), "{id_a}");
        assert!(id_a.contains("snap_schema="), "{id_a}");
    }

    #[test]
    fn run_raw_preserves_input_order() {
        let machine = presets::xeon_5218();
        let cells: Vec<RawCell> = [3u64, 11, 3]
            .iter()
            .map(|&seed| RawCell {
                cfg: SimConfig::new(machine.clone()).seed(seed),
                make: gdb_factory(),
            })
            .collect();
        let (out, telemetry) = run_raw(cells, 4);
        assert_eq!(telemetry.cells_total, 3);
        assert!(telemetry.events_total > 0, "runs dispatch events");
        assert_eq!(out.len(), 3);
        // Same seed → same result; different seed → (almost surely) not.
        assert_eq!(out[0].time_s, out[2].time_s);
        assert_ne!(out[0].time_s, out[1].time_s);
    }
}
