//! Content-addressed on-disk result cache.
//!
//! Every experiment cell — one `(machine × scheduler setup × workload ×
//! run index)` simulation — is identified by a 128-bit key hashed from a
//! canonical description of *everything* that determines its outcome: the
//! cache schema version, the crate version, the full machine spec, the
//! full scheduler setup (including ablation parameters), the workload key,
//! the run index, the derived seed, and the horizon. Re-running a figure
//! binary after an unrelated change skips completed cells; any change to a
//! cell's configuration changes its key and forces a fresh run.
//!
//! Entries are one JSON file per cell under `results/cache/` (override
//! with `NEST_CACHE_DIR`), written atomically (temp file + rename) so
//! concurrent workers and concurrent harness processes never observe torn
//! entries. Each entry carries a checksum of its canonical summary text;
//! a truncated, garbled, or bit-flipped entry fails validation and is
//! deleted and recomputed — corruption is a cache miss, never a panic.
//! `NEST_CACHE=off` bypasses the cache; `NEST_CACHE=clear` wipes it once
//! at startup and then proceeds with it enabled.

use std::path::{Path, PathBuf};

use nest_metrics::{FleetSummary, LatencySummary, RunSummary, ServeSummary};
use nest_simcore::rng::{mix64, splitmix64};

use crate::json::{obj, parse, Json};

/// Bump when the cached summary format or key derivation changes; old
/// entries then miss instead of deserializing wrongly.
/// Schema 2 added the per-entry content checksum.
pub const CACHE_SCHEMA: u32 = 2;

/// How the cache behaves, from `NEST_CACHE`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Read and write entries (the default).
    On,
    /// Bypass entirely.
    Off,
    /// Wipe the cache directory once, then behave like `On`.
    Clear,
}

impl CacheMode {
    /// Parses `NEST_CACHE` (`on` / `off` / `clear`; unset means `On`).
    pub fn from_env() -> CacheMode {
        match std::env::var("NEST_CACHE").as_deref() {
            Ok("off") | Ok("0") => CacheMode::Off,
            Ok("clear") => CacheMode::Clear,
            _ => CacheMode::On,
        }
    }
}

/// Handle to the on-disk cache.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    enabled: bool,
}

impl Cache {
    /// Opens the cache as configured by `NEST_CACHE` / `NEST_CACHE_DIR`.
    pub fn from_env() -> Cache {
        let dir = std::env::var("NEST_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| Path::new("results").join("cache"));
        Cache::at(dir, CacheMode::from_env())
    }

    /// Opens (or clears) a cache at an explicit directory.
    pub fn at(dir: PathBuf, mode: CacheMode) -> Cache {
        match mode {
            CacheMode::Off => Cache {
                dir,
                enabled: false,
            },
            CacheMode::Clear => {
                // Best-effort wipe; a shared cache dir may race with
                // another process, which is fine — entries are re-created.
                let _ = std::fs::remove_dir_all(&dir);
                Cache { dir, enabled: true }
            }
            CacheMode::On => Cache { dir, enabled: true },
        }
    }

    /// A cache that never hits and never stores.
    pub fn disabled() -> Cache {
        Cache {
            dir: PathBuf::new(),
            enabled: false,
        }
    }

    /// Whether lookups/stores do anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Returns the cached summary for `key`, if present and valid.
    ///
    /// An entry that exists but fails validation — unparseable JSON
    /// (truncated writes, garbage), a stale schema, a missing or
    /// mismatched checksum — is deleted so the cell recomputes and
    /// rewrites it. Corruption therefore costs one miss, never a panic
    /// and never a wrong result.
    pub fn lookup(&self, key: &str) -> Option<RunSummary> {
        if !self.enabled {
            return None;
        }
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        match validate_entry(&text) {
            Some(summary) => Some(summary),
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores `summary` under `key`, atomically. Errors are swallowed —
    /// a failed store only costs a future cache miss.
    pub fn store(&self, key: &str, summary: &RunSummary) {
        if !self.enabled {
            return;
        }
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let summary_json = summary_to_json(summary);
        let root = obj(vec![
            ("schema", Json::u64(CACHE_SCHEMA as u64)),
            (
                "checksum",
                Json::str(&content_checksum(&summary_json.to_pretty())),
            ),
            ("summary", summary_json),
        ]);
        let final_path = self.entry_path(key);
        // Unique temp name per process+key: concurrent writers of the same
        // key produce identical content, so last-rename-wins is safe.
        let tmp = self.dir.join(format!("{key}.{}.tmp", std::process::id()));
        if std::fs::write(&tmp, root.to_pretty()).is_ok() {
            let _ = std::fs::rename(&tmp, &final_path);
        }
    }
}

/// Validates one cache-entry text: schema, checksum, and summary shape.
fn validate_entry(text: &str) -> Option<RunSummary> {
    let root = parse(text).ok()?;
    if root.get("schema")?.as_u64()? != CACHE_SCHEMA as u64 {
        return None;
    }
    let want = root.get("checksum")?.as_str()?;
    let summary = summary_from_json(root.get("summary")?)?;
    // The summary's JSON form is canonical (round-tripping re-serializes
    // to identical bytes), so checksumming the re-serialization detects
    // any in-place edit or bit flip of the stored values.
    if content_checksum(&summary_to_json(&summary).to_pretty()) != want {
        return None;
    }
    Some(summary)
}

/// Checksum of a canonical text blob, as 16 hex digits (the same
/// FNV/SplitMix construction as [`cell_key`], single pass).
pub fn content_checksum(text: &str) -> String {
    format!("{:016x}", hash_pass(text, 0xCBF2_9CE4_8422_2325))
}

/// Builds the canonical identity string of one cell. Every field that can
/// change the simulation's outcome must appear here.
#[allow(clippy::too_many_arguments)]
pub fn cell_identity(
    machine_debug: &str,
    setup_identity: &str,
    workload_key: &str,
    run_index: usize,
    seed: u64,
    horizon_ns: u64,
) -> String {
    format!(
        "schema={CACHE_SCHEMA};version={};machine={machine_debug};setup={setup_identity};\
         workload={workload_key};run={run_index};seed={seed};horizon={horizon_ns}",
        env!("CARGO_PKG_VERSION"),
    )
}

/// Builds the canonical identity string of one *scenario* cell. The
/// scenario's canonical [`cache_scope`](nest_scenario::Scenario::cache_scope)
/// — machine key, policy spec, governor, workload spec, base seed,
/// horizon — replaces the legacy field-by-field description, extending
/// caching to any ad-hoc scenario `nest-sim` can express. The full
/// machine debug string rides along so editing a preset still invalidates
/// entries even though the registry key is unchanged.
pub fn scenario_cell_identity(
    scope: &str,
    machine_debug: &str,
    run_index: usize,
    seed: u64,
) -> String {
    format!(
        "schema={CACHE_SCHEMA};version={};scenario={scope};machine={machine_debug};\
         run={run_index};seed={seed}",
        env!("CARGO_PKG_VERSION"),
    )
}

/// Hashes a cell identity to its 32-hex-digit content address.
///
/// Two independent FNV-1a/SplitMix passes give a 128-bit key; collisions
/// across a few thousand cells are vanishingly unlikely.
pub fn cell_key(identity: &str) -> String {
    let lo = hash_pass(identity, 0xCBF2_9CE4_8422_2325);
    let hi = hash_pass(identity, 0x6C62_272E_07BB_0142);
    format!("{hi:016x}{lo:016x}")
}

fn hash_pass(s: &str, basis: u64) -> u64 {
    let mut h = basis;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    splitmix64(mix64(h, s.len() as u64))
}

/// Serializes a summary to its JSON form (shared by the cache and the
/// figure artifacts).
pub fn summary_to_json(s: &RunSummary) -> Json {
    let mut fields = vec![
        ("time_s", Json::f64(s.time_s)),
        ("energy_j", Json::f64(s.energy_j)),
        ("underload_per_s", Json::f64(s.underload_per_s)),
        ("total_underload", Json::u64(s.total_underload)),
        (
            "freq_edges_ghz",
            Json::Arr(s.freq_edges_ghz.iter().map(|&e| Json::f64(e)).collect()),
        ),
        (
            "freq_busy_ns",
            Json::Arr(s.freq_busy_ns.iter().map(|&n| Json::u64(n)).collect()),
        ),
        (
            "placements",
            Json::Arr(
                s.placements
                    .iter()
                    .map(|(path, n)| Json::Arr(vec![Json::str(path), Json::u64(*n)]))
                    .collect(),
            ),
        ),
        ("distinct_cores", Json::usize(s.distinct_cores)),
        (
            "latency",
            obj(vec![
                ("p50_ns", Json::opt_u64(s.latency.p50_ns)),
                ("p99_ns", Json::opt_u64(s.latency.p99_ns)),
                ("p999_ns", Json::opt_u64(s.latency.p999_ns)),
                ("mean_ns", Json::opt_f64(s.latency.mean_ns)),
                ("samples", Json::usize(s.latency.samples)),
            ]),
        ),
        ("total_tasks", Json::usize(s.total_tasks)),
        ("hit_horizon", Json::Bool(s.hit_horizon)),
    ];
    // The serve block appears only for serving runs, so every
    // pre-existing entry and artifact serializes byte-for-byte as before.
    if let Some(serve) = &s.serve {
        fields.push((
            "serve",
            obj(vec![
                ("offered", Json::u64(serve.offered)),
                ("completed", Json::u64(serve.completed)),
                ("within_slo", Json::u64(serve.within_slo)),
                ("slo_ns", Json::u64(serve.slo_ns)),
                ("p50_ns", Json::opt_u64(serve.p50_ns)),
                ("p99_ns", Json::opt_u64(serve.p99_ns)),
                ("p999_ns", Json::opt_u64(serve.p999_ns)),
                ("mean_ns", Json::opt_f64(serve.mean_ns)),
                ("goodput_per_s", Json::opt_f64(serve.goodput_per_s)),
                (
                    "energy_per_request_j",
                    Json::opt_f64(serve.energy_per_request_j),
                ),
            ]),
        ));
    }
    // Likewise the fleet block: only multi-host runs carry it.
    if let Some(fleet) = &s.fleet {
        fields.push((
            "fleet",
            obj(vec![
                ("hosts", Json::u64(fleet.hosts as u64)),
                ("offered", Json::u64(fleet.offered)),
                ("completed", Json::u64(fleet.completed)),
                ("failed", Json::u64(fleet.failed)),
                ("shed", Json::u64(fleet.shed)),
                ("timeouts", Json::u64(fleet.timeouts)),
                ("retries", Json::u64(fleet.retries)),
                ("hedges", Json::u64(fleet.hedges)),
                ("hedge_wins", Json::u64(fleet.hedge_wins)),
                ("crashes", Json::u64(fleet.crashes)),
                ("restarts", Json::u64(fleet.restarts)),
                ("p50_ns", Json::opt_u64(fleet.p50_ns)),
                ("p99_ns", Json::opt_u64(fleet.p99_ns)),
                ("p999_ns", Json::opt_u64(fleet.p999_ns)),
                ("mean_ns", Json::opt_f64(fleet.mean_ns)),
                ("goodput_per_s", Json::opt_f64(fleet.goodput_per_s)),
                ("time_to_warm_s", Json::opt_f64(fleet.time_to_warm_s)),
                ("timeline_window_ns", Json::u64(fleet.timeline_window_ns)),
                (
                    "timeline",
                    Json::Arr(
                        fleet
                            .timeline
                            .iter()
                            .map(|&(arrived, ok)| {
                                Json::Arr(vec![Json::u64(arrived), Json::u64(ok)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    obj(fields)
}

/// Rebuilds a summary from its JSON form; `None` on any shape mismatch.
pub fn summary_from_json(v: &Json) -> Option<RunSummary> {
    let nums = |key: &str| -> Option<Vec<f64>> {
        v.get(key)?.as_arr()?.iter().map(Json::as_f64).collect()
    };
    let ints = |key: &str| -> Option<Vec<u64>> {
        v.get(key)?.as_arr()?.iter().map(Json::as_u64).collect()
    };
    let placements: Option<Vec<(String, u64)>> = v
        .get("placements")?
        .as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            Some((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_u64()?))
        })
        .collect();
    let lat = v.get("latency")?;
    let opt_u64 = |field: &Json| {
        if field.is_null() {
            Some(None)
        } else {
            field.as_u64().map(Some)
        }
    };
    Some(RunSummary {
        time_s: v.get("time_s")?.as_f64()?,
        energy_j: v.get("energy_j")?.as_f64()?,
        underload_per_s: v.get("underload_per_s")?.as_f64()?,
        total_underload: v.get("total_underload")?.as_u64()?,
        freq_edges_ghz: nums("freq_edges_ghz")?,
        freq_busy_ns: ints("freq_busy_ns")?,
        placements: placements?,
        distinct_cores: v.get("distinct_cores")?.as_usize()?,
        latency: LatencySummary {
            p50_ns: opt_u64(lat.get("p50_ns")?)?,
            p99_ns: opt_u64(lat.get("p99_ns")?)?,
            p999_ns: opt_u64(lat.get("p999_ns")?)?,
            mean_ns: if lat.get("mean_ns")?.is_null() {
                None
            } else {
                Some(lat.get("mean_ns")?.as_f64()?)
            },
            samples: lat.get("samples")?.as_usize()?,
        },
        total_tasks: v.get("total_tasks")?.as_usize()?,
        hit_horizon: v.get("hit_horizon")?.as_bool()?,
        serve: match v.get("serve") {
            None => None,
            Some(serve) => {
                let opt_f64 = |field: &Json| {
                    if field.is_null() {
                        Some(None)
                    } else {
                        field.as_f64().map(Some)
                    }
                };
                Some(ServeSummary {
                    offered: serve.get("offered")?.as_u64()?,
                    completed: serve.get("completed")?.as_u64()?,
                    within_slo: serve.get("within_slo")?.as_u64()?,
                    slo_ns: serve.get("slo_ns")?.as_u64()?,
                    p50_ns: opt_u64(serve.get("p50_ns")?)?,
                    p99_ns: opt_u64(serve.get("p99_ns")?)?,
                    p999_ns: opt_u64(serve.get("p999_ns")?)?,
                    mean_ns: opt_f64(serve.get("mean_ns")?)?,
                    goodput_per_s: opt_f64(serve.get("goodput_per_s")?)?,
                    energy_per_request_j: opt_f64(serve.get("energy_per_request_j")?)?,
                })
            }
        },
        fleet: match v.get("fleet") {
            None => None,
            Some(fleet) => {
                let opt_f64 = |field: &Json| {
                    if field.is_null() {
                        Some(None)
                    } else {
                        field.as_f64().map(Some)
                    }
                };
                let timeline: Option<Vec<(u64, u64)>> = fleet
                    .get("timeline")?
                    .as_arr()?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_arr()?;
                        Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
                    })
                    .collect();
                Some(FleetSummary {
                    hosts: fleet.get("hosts")?.as_u64()? as u32,
                    offered: fleet.get("offered")?.as_u64()?,
                    completed: fleet.get("completed")?.as_u64()?,
                    failed: fleet.get("failed")?.as_u64()?,
                    shed: fleet.get("shed")?.as_u64()?,
                    timeouts: fleet.get("timeouts")?.as_u64()?,
                    retries: fleet.get("retries")?.as_u64()?,
                    hedges: fleet.get("hedges")?.as_u64()?,
                    hedge_wins: fleet.get("hedge_wins")?.as_u64()?,
                    crashes: fleet.get("crashes")?.as_u64()?,
                    restarts: fleet.get("restarts")?.as_u64()?,
                    p50_ns: opt_u64(fleet.get("p50_ns")?)?,
                    p99_ns: opt_u64(fleet.get("p99_ns")?)?,
                    p999_ns: opt_u64(fleet.get("p999_ns")?)?,
                    mean_ns: opt_f64(fleet.get("mean_ns")?)?,
                    goodput_per_s: opt_f64(fleet.get("goodput_per_s")?)?,
                    time_to_warm_s: opt_f64(fleet.get("time_to_warm_s")?)?,
                    timeline_window_ns: fleet.get("timeline_window_ns")?.as_u64()?,
                    timeline: timeline?,
                })
            }
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> RunSummary {
        RunSummary {
            time_s: 1.25,
            energy_j: 321.0625,
            underload_per_s: 0.5,
            total_underload: 17,
            freq_edges_ghz: vec![1.0, 2.3, 3.9],
            freq_busy_ns: vec![123, 0, 9_876_543_210_123],
            placements: vec![("CfsFork".into(), 5), ("NestPrimary".into(), 11)],
            distinct_cores: 3,
            latency: LatencySummary {
                p50_ns: Some(1_000),
                p99_ns: Some(50_000),
                p999_ns: None,
                mean_ns: Some(1234.5),
                samples: 400,
            },
            total_tasks: 99,
            hit_horizon: false,
            serve: None,
            fleet: None,
        }
    }

    #[test]
    fn summary_json_round_trip_is_lossless() {
        let s = sample_summary();
        let back = summary_from_json(&summary_to_json(&s)).expect("round trip");
        assert_eq!(back, s);
        // And canonical: serializing twice gives identical bytes.
        assert_eq!(
            summary_to_json(&s).to_pretty(),
            summary_to_json(&back).to_pretty()
        );
        // Non-serving summaries carry no serve key at all.
        assert!(summary_to_json(&s).get("serve").is_none());
        // Likewise single-host summaries carry no fleet key.
        assert!(summary_to_json(&s).get("fleet").is_none());
    }

    #[test]
    fn serving_summary_round_trips_through_the_cache_codec() {
        let s = RunSummary {
            serve: Some(ServeSummary {
                offered: 2_000,
                completed: 1_990,
                within_slo: 1_800,
                slo_ns: 2_000_000,
                p50_ns: Some(400_000),
                p99_ns: Some(1_900_000),
                p999_ns: Some(4_100_000),
                mean_ns: Some(512_333.25),
                goodput_per_s: Some(450.0),
                energy_per_request_j: None,
            }),
            ..sample_summary()
        };
        let json = summary_to_json(&s);
        assert!(json.get("serve").is_some());
        let back = summary_from_json(&json).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(json.to_pretty(), summary_to_json(&back).to_pretty());
    }

    #[test]
    fn fleet_summary_round_trips_through_the_cache_codec() {
        let s = RunSummary {
            fleet: Some(FleetSummary {
                hosts: 4,
                offered: 1_000,
                completed: 960,
                failed: 30,
                shed: 10,
                timeouts: 45,
                retries: 40,
                hedges: 12,
                hedge_wins: 5,
                crashes: 1,
                restarts: 1,
                p50_ns: Some(600_000),
                p99_ns: Some(3_000_000),
                p999_ns: Some(9_000_000),
                mean_ns: Some(812_444.5),
                goodput_per_s: Some(320.0),
                time_to_warm_s: Some(0.125),
                timeline_window_ns: 50_000_000,
                timeline: vec![(100, 98), (120, 60), (110, 109)],
            }),
            ..sample_summary()
        };
        let json = summary_to_json(&s);
        assert!(json.get("fleet").is_some());
        let back = summary_from_json(&json).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(json.to_pretty(), summary_to_json(&back).to_pretty());
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let id = cell_identity("m", "s", "w", 0, 42, 600);
        assert_eq!(cell_key(&id), cell_key(&id));
        assert_eq!(cell_key(&id).len(), 32);
        for changed in [
            cell_identity("m2", "s", "w", 0, 42, 600),
            cell_identity("m", "s2", "w", 0, 42, 600),
            cell_identity("m", "s", "w2", 0, 42, 600),
            cell_identity("m", "s", "w", 1, 42, 600),
            cell_identity("m", "s", "w", 0, 43, 600),
            cell_identity("m", "s", "w", 0, 42, 601),
        ] {
            assert_ne!(cell_key(&id), cell_key(&changed), "{changed}");
        }
    }

    #[test]
    fn store_lookup_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "nest-cache-test-{}-{:x}",
            std::process::id(),
            splitmix64(0xC0FFEE)
        ));
        let cache = Cache::at(dir.clone(), CacheMode::Clear);
        let s = sample_summary();
        let key = cell_key("some-cell");
        assert!(cache.lookup(&key).is_none());
        cache.store(&key, &s);
        assert_eq!(cache.lookup(&key), Some(s));
        // Clearing wipes it.
        let cache = Cache::at(dir.clone(), CacheMode::Clear);
        assert!(cache.lookup(&key).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_entries_are_deleted_and_miss() {
        let dir = std::env::temp_dir().join(format!(
            "nest-cache-corrupt-{}-{:x}",
            std::process::id(),
            splitmix64(0xBADF00D)
        ));
        let cache = Cache::at(dir.clone(), CacheMode::Clear);
        let key = cell_key("corruptible");
        cache.store(&key, &sample_summary());
        let path = dir.join(format!("{key}.json"));
        let good = std::fs::read_to_string(&path).unwrap();

        // Truncation, garbage, a flipped value, and a stripped checksum
        // must all miss — and remove the bad file so it is recomputed.
        let half = &good[..good.len() / 2];
        let corruptions = [
            half.to_string(),
            "not json at all {{{".to_string(),
            good.replace("1.25", "9.75"),
            good.replace("checksum", "chequesum"),
        ];
        for bad in corruptions {
            std::fs::write(&path, &bad).unwrap();
            assert!(cache.lookup(&key).is_none(), "corrupt entry hit: {bad:.40}");
            assert!(!path.exists(), "corrupt entry not deleted");
            cache.store(&key, &sample_summary());
            assert!(cache.lookup(&key).is_some(), "recompute not stored");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn old_schema_entries_miss() {
        let dir = std::env::temp_dir().join(format!(
            "nest-cache-schema-{}-{:x}",
            std::process::id(),
            splitmix64(0x5C4E)
        ));
        let cache = Cache::at(dir.clone(), CacheMode::Clear);
        let key = cell_key("schema-check");
        cache.store(&key, &sample_summary());
        let path = dir.join(format!("{key}.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"schema\": 2", "\"schema\": 1")).unwrap();
        assert!(cache.lookup(&key).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn clearing_the_cache_also_clears_warm_snapshots() {
        let dir = std::env::temp_dir().join(format!(
            "nest-cache-clear-warm-{}-{:x}",
            std::process::id(),
            splitmix64(0xC1EA)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // The warm snapshot store lives inside the cache directory, so a
        // `NEST_CACHE=clear` run must discard stale snapshots along with
        // stale summaries.
        let warm = dir.join("warm");
        std::fs::create_dir_all(&warm).unwrap();
        std::fs::write(warm.join("deadbeef.snap"), "stale snapshot").unwrap();
        let _ = Cache::at(dir.clone(), CacheMode::Clear);
        assert!(!warm.exists(), "clear left warm snapshots behind");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checksum_is_stable() {
        assert_eq!(content_checksum("abc"), content_checksum("abc"));
        assert_ne!(content_checksum("abc"), content_checksum("abd"));
        assert_eq!(content_checksum("x").len(), 16);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = Cache::disabled();
        let key = cell_key("x");
        cache.store(&key, &sample_summary());
        assert!(cache.lookup(&key).is_none());
    }
}
