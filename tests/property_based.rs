//! Property-based tests over the public API: arbitrary (small) workloads
//! must run to completion deterministically with sane metrics, under
//! every policy.

// Property-based tests need the external `proptest` crate; the offline
// default build compiles this file to an empty test binary. Enable with
// `--features proptest` after adding proptest to [dev-dependencies].
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use nest_repro::{presets, run_once, PolicyKind, SimConfig, Workload};
use nest_simcore::{Action, SimRng, SimSetup, TaskSpec};

/// A serializable mini-workload description proptest can generate.
#[derive(Clone, Debug)]
struct MiniWorkload {
    tasks: Vec<Vec<Step>>,
}

#[derive(Clone, Debug)]
enum Step {
    Compute(u64),
    Sleep(u64),
    ForkChild(u64),
    Wait,
    Yield,
}

impl Workload for MiniWorkload {
    fn name(&self) -> String {
        "mini".into()
    }

    fn build(&self, _setup: &mut dyn SimSetup, _rng: &mut SimRng) -> Vec<TaskSpec> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, steps)| {
                let mut actions = Vec::new();
                let mut forked = false;
                for s in steps {
                    match s {
                        Step::Compute(c) => actions.push(Action::Compute { cycles: *c }),
                        Step::Sleep(ns) => actions.push(Action::Sleep { ns: *ns }),
                        Step::ForkChild(c) => {
                            forked = true;
                            actions.push(Action::Fork {
                                child: TaskSpec::script(
                                    "child",
                                    vec![Action::Compute { cycles: *c }],
                                ),
                            });
                        }
                        Step::Wait => {
                            if forked {
                                actions.push(Action::WaitChildren);
                            }
                        }
                        Step::Yield => actions.push(Action::Yield),
                    }
                }
                TaskSpec::script(format!("t{i}"), actions)
            })
            .collect()
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1_000u64..200_000_000).prop_map(Step::Compute),
        (1_000u64..50_000_000).prop_map(Step::Sleep),
        (1_000u64..50_000_000).prop_map(Step::ForkChild),
        Just(Step::Wait),
        Just(Step::Yield),
    ]
}

fn workload_strategy() -> impl Strategy<Value = MiniWorkload> {
    prop::collection::vec(prop::collection::vec(step_strategy(), 1..8), 1..6)
        .prop_map(|tasks| MiniWorkload { tasks })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_workload_completes_under_any_policy(
        w in workload_strategy(),
        policy_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let policy = match policy_idx {
            0 => PolicyKind::Cfs,
            1 => PolicyKind::Nest,
            _ => PolicyKind::Smove,
        };
        let cfg = SimConfig::new(presets::xeon_5218())
            .policy(policy)
            .seed(seed);
        let r = run_once(&cfg, &w);
        prop_assert!(!r.hit_horizon, "workload did not finish");
        prop_assert!(r.time_s > 0.0);
        prop_assert!(r.energy_j > 0.0);
        prop_assert!(r.freq.fractions().iter().all(|f| (0.0..=1.0).contains(f)));
        let total: f64 = r.freq.fractions().iter().sum();
        prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_config_identical_outcome(
        w in workload_strategy(),
        seed in 0u64..1000,
    ) {
        let cfg = SimConfig::new(presets::xeon_5218())
            .policy(PolicyKind::Nest)
            .seed(seed);
        let a = run_once(&cfg, &w);
        let b = run_once(&cfg, &w);
        prop_assert_eq!(a.time_s, b.time_s);
        prop_assert_eq!(a.energy_j, b.energy_j);
        prop_assert_eq!(a.total_tasks, b.total_tasks);
    }

    #[test]
    fn underload_never_negative_and_bounded_by_cores(
        w in workload_strategy(),
    ) {
        let cfg = SimConfig::new(presets::xeon_5218());
        let r = run_once(&cfg, &w);
        for i in &r.underload.intervals {
            prop_assert!(i.cores_used as usize <= 64);
            prop_assert!(i.underload() <= i.cores_used);
        }
    }
}
