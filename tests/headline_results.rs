//! End-to-end assertions of the paper's headline claims, as automated
//! regression tests: if a refactor breaks the reproduction, these fail.
//!
//! Thresholds are deliberately looser than the printed figures so the
//! tests assert *shape* (who wins, roughly by how much) without being
//! brittle to calibration nudges.

use nest_repro::{presets, run_many, run_once, Governor, PolicyKind, SimConfig};
use nest_workloads::{configure::Configure, dacapo::Dacapo, nas::Nas};

fn mean_time(cfg: &SimConfig, w: &dyn nest_repro::Workload, runs: usize) -> f64 {
    run_many(cfg, w, runs).iter().map(|r| r.time_s).sum::<f64>() / runs as f64
}

#[test]
fn nest_speeds_up_configure_on_the_5218() {
    // §5.2: "Speedups compared to CFS-schedutil exceed 5% except on
    // NodeJS".
    let machine = presets::xeon_5218();
    let w = Configure::named("gdb");
    let cfs = mean_time(&SimConfig::new(machine.clone()), &w, 2);
    let nest = mean_time(&SimConfig::new(machine).policy(PolicyKind::Nest), &w, 2);
    let speedup = nest_metrics::speedup_pct(cfs, nest);
    assert!(speedup > 5.0, "Nest configure speedup only {speedup:.1}%");
    assert!(speedup < 60.0, "implausibly large speedup {speedup:.1}%");
}

#[test]
fn nodejs_configure_is_trivial_for_nest() {
    // §5.2: nodejs is dominated by long single tasks; Nest gains little.
    let machine = presets::xeon_5218();
    let w = Configure::named("nodejs");
    let cfs = mean_time(&SimConfig::new(machine.clone()), &w, 2);
    let nest = mean_time(&SimConfig::new(machine).policy(PolicyKind::Nest), &w, 2);
    let speedup = nest_metrics::speedup_pct(cfs, nest);
    assert!(
        speedup.abs() < 10.0,
        "nodejs should be near-neutral, got {speedup:.1}%"
    );
}

#[test]
fn nest_nearly_eliminates_underload() {
    // Figure 4's shape: CFS positive, Nest near zero.
    let machine = presets::xeon_5218();
    let w = Configure::named("llvm_ninja");
    let cfs = run_once(&SimConfig::new(machine.clone()), &w);
    let nest = run_once(&SimConfig::new(machine).policy(PolicyKind::Nest), &w);
    let u_cfs = cfs.underload.underload_per_second();
    let u_nest = nest.underload.underload_per_second();
    assert!(u_cfs > 1.0, "CFS underload unexpectedly low: {u_cfs:.2}");
    assert!(
        u_nest < 0.2 * u_cfs,
        "Nest underload not eliminated: {u_nest:.2} vs {u_cfs:.2}"
    );
}

#[test]
fn cfs_performance_gains_little_on_cascade_lake_configure() {
    // §5.2: "CFS-performance gives little speedup (never more than 5%)"
    // on the 6130/5218 because CFS-schedutil already reaches turbo.
    let machine = presets::xeon_5218();
    let w = Configure::named("llvm_ninja");
    let sched = mean_time(&SimConfig::new(machine.clone()), &w, 2);
    let perf = mean_time(
        &SimConfig::new(machine).governor(Governor::Performance),
        &w,
        2,
    );
    let speedup = nest_metrics::speedup_pct(sched, perf);
    assert!(
        speedup < 10.0,
        "CFS-perf should gain little on the 5218, got {speedup:.1}%"
    );
}

#[test]
fn cfs_performance_matters_on_the_e7() {
    // §5.2: on the older E7, performance gives substantial speedups
    // because schedutil drops to subturbo whenever there are gaps.
    let machine = presets::e7_8870_v4();
    let w = Configure::named("gdb");
    let sched = mean_time(&SimConfig::new(machine.clone()), &w, 2);
    let perf = mean_time(
        &SimConfig::new(machine).governor(Governor::Performance),
        &w,
        2,
    );
    let speedup = nest_metrics::speedup_pct(sched, perf);
    assert!(
        speedup > 8.0,
        "CFS-perf should matter on the E7, got {speedup:.1}%"
    );
}

#[test]
fn smove_underperforms_nest_on_configure() {
    // §5.2: "As Smove does not perform as well as Nest even in this
    // [best-case] scenario…".
    let machine = presets::xeon_5218();
    let w = Configure::named("mplayer");
    let cfs = mean_time(&SimConfig::new(machine.clone()), &w, 2);
    let nest = mean_time(
        &SimConfig::new(machine.clone()).policy(PolicyKind::Nest),
        &w,
        2,
    );
    let smove = mean_time(&SimConfig::new(machine).policy(PolicyKind::Smove), &w, 2);
    let s_nest = nest_metrics::speedup_pct(cfs, nest);
    let s_smove = nest_metrics::speedup_pct(cfs, smove);
    assert!(
        s_nest > s_smove,
        "Nest ({s_nest:.1}%) should beat Smove ({s_smove:.1}%)"
    );
}

#[test]
fn nas_parity_on_two_socket_machines() {
    // §5.4: "on the two-socket 6130 and 5218, CFS and Nest have
    // essentially the same performance".
    let machine = presets::xeon_6130(2);
    let w = Nas::named("is.C.x");
    let cfs = mean_time(&SimConfig::new(machine.clone()), &w, 2);
    let nest = mean_time(&SimConfig::new(machine).policy(PolicyKind::Nest), &w, 2);
    let speedup = nest_metrics::speedup_pct(cfs, nest);
    assert!(
        speedup.abs() < 10.0,
        "NAS 2-socket should be near parity, got {speedup:.1}%"
    );
}

#[test]
fn single_task_dacapo_unharmed() {
    // §5.3: applications with one or a few tasks stay within ±5-6%.
    let machine = presets::xeon_6130(2);
    let w = Dacapo::named("fop");
    let cfs = mean_time(&SimConfig::new(machine.clone()), &w, 2);
    let nest = mean_time(&SimConfig::new(machine).policy(PolicyKind::Nest), &w, 2);
    let speedup = nest_metrics::speedup_pct(cfs, nest);
    assert!(
        speedup > -8.0,
        "Nest must not hurt single-task apps much, got {speedup:.1}%"
    );
}

#[test]
fn nest_speeds_up_h2_on_four_socket_6130() {
    // §5.3: h2 gains ~20% on the 4-socket 6130.
    let machine = presets::xeon_6130(4);
    let w = Dacapo::named("h2");
    let cfs = mean_time(&SimConfig::new(machine.clone()), &w, 1);
    let nest = mean_time(&SimConfig::new(machine).policy(PolicyKind::Nest), &w, 1);
    let speedup = nest_metrics::speedup_pct(cfs, nest);
    assert!(speedup > 8.0, "h2 should gain with Nest, got {speedup:.1}%");
}

#[test]
fn nest_does_not_burn_more_energy_on_configure() {
    // §5.2 / Figure 7: Nest provides speedups *and* energy savings.
    let machine = presets::xeon_5218();
    let w = Configure::named("php");
    let cfs = run_once(&SimConfig::new(machine.clone()), &w);
    let nest = run_once(&SimConfig::new(machine).policy(PolicyKind::Nest), &w);
    assert!(
        nest.energy_j <= cfs.energy_j * 1.05,
        "Nest energy {:.0}J vs CFS {:.0}J",
        nest.energy_j,
        cfs.energy_j
    );
}

#[test]
fn results_are_deterministic_for_a_seed() {
    let machine = presets::xeon_5218();
    let cfg = SimConfig::new(machine).policy(PolicyKind::Nest).seed(77);
    let w = Configure::named("gcc");
    let a = run_once(&cfg, &w);
    let b = run_once(&cfg, &w);
    assert_eq!(a.time_s, b.time_s);
    assert_eq!(a.energy_j, b.energy_j);
    assert_eq!(a.total_tasks, b.total_tasks);
    assert_eq!(a.placements.total(), b.placements.total());
}
