//! The snapshot/restore correctness bar, pinned as tests: for every
//! scheduling policy, with and without fault injection and request
//! serving, a run that pauses mid-flight, snapshots, restores from the
//! snapshot text, and continues must be indistinguishable from a run
//! that never paused — and the snapshot itself must round-trip through
//! restore to byte-identical text.
//!
//! These are the end-to-end guarantees behind `nest-sim replay` and the
//! harness's warm-start: neither surface may ever change a result.

use nest_repro::scenario::Scenario;
use nest_repro::{restore, run_once, run_until, PausedSim, Progress, SnapError};
use nest_simcore::Time;

/// Every `(policy × variant)` combination the correctness bar covers:
/// a plain batch workload, the same workload under a fault plan, and an
/// open-loop serving workload.
fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for policy in ["cfs", "nest", "smove"] {
        let plain = Scenario::parse("5218", policy, "schedutil", "configure:gdb")
            .expect("plain scenario parses")
            .with_seed(2022);
        let faulted = plain
            .clone()
            .with_faults("faults:hotplug=2@50ms:120ms,throttle=s0:0.7")
            .expect("fault plan parses");
        let serving = Scenario::parse("5218", policy, "schedutil", "serve:requests=300,rate=2000")
            .expect("serving scenario parses")
            .with_seed(2022);
        out.extend([plain, faulted, serving]);
    }
    out
}

/// Runs `s` to the pause point, asserting it actually pauses (the whole
/// suite is vacuous if the workload ends first).
fn pause(s: &Scenario, at: Time) -> PausedSim {
    let wl = s.build_workload();
    match run_until(&s.sim_config(), wl.as_ref(), at) {
        Progress::Paused(p) => *p,
        Progress::Done(_) => panic!("{} finished before the {at} pause point", s.identity()),
    }
}

#[test]
fn pause_restore_continue_matches_straight_run_everywhere() {
    let at = Time::from_millis(60);
    for s in scenarios() {
        let id = s.identity();
        let wl = s.build_workload();
        let direct = run_once(&s.sim_config(), wl.as_ref());

        let text = pause(&s, at)
            .snapshot(&id, s.to_json())
            .expect("snapshot serializes");
        let resumed = restore(&s.sim_config(), wl.as_ref(), &text, &id)
            .expect("snapshot restores")
            .resume();

        assert!(!direct.aborted && !resumed.aborted, "{id}");
        assert_eq!(
            direct.summarize(),
            resumed.summarize(),
            "restored continuation diverged from the straight run: {id}"
        );
        assert_eq!(direct.time_s, resumed.time_s, "{id}");
        assert_eq!(direct.energy_j, resumed.energy_j, "{id}");
    }
}

#[test]
fn snapshots_round_trip_to_identical_bytes_everywhere() {
    let at = Time::from_millis(60);
    for s in scenarios() {
        let id = s.identity();
        let wl = s.build_workload();
        let text = pause(&s, at)
            .snapshot(&id, s.to_json())
            .expect("snapshot serializes");
        let again = restore(&s.sim_config(), wl.as_ref(), &text, &id)
            .expect("snapshot restores")
            .snapshot(&id, s.to_json())
            .expect("restored state re-serializes");
        assert_eq!(text, again, "snapshot → restore → snapshot moved: {id}");
    }
}

#[test]
fn a_snapshot_never_restores_onto_a_different_scenario() {
    let at = Time::from_millis(60);
    let nest = Scenario::parse("5218", "nest", "schedutil", "configure:gdb")
        .unwrap()
        .with_seed(2022);
    let cfs = Scenario::parse("5218", "cfs", "schedutil", "configure:gdb")
        .unwrap()
        .with_seed(2022);
    let text = pause(&nest, at)
        .snapshot(&nest.identity(), nest.to_json())
        .expect("snapshot serializes");
    // Claiming the snapshot belongs to the CFS scenario must fail loudly
    // (the header records the nest identity), not silently misrestore.
    let err = restore(
        &cfs.sim_config(),
        cfs.build_workload().as_ref(),
        &text,
        &cfs.identity(),
    )
    .err()
    .expect("mismatched identity refused");
    assert!(
        matches!(err, SnapError::IdentityMismatch { .. }),
        "unexpected error kind: {err}"
    );
}
