//! Cross-crate invariant tests: whatever the workload and policy, the
//! engine must conserve tasks, keep the trace well-formed, and respect
//! the machine's frequency envelope.

use std::cell::RefCell;
use std::rc::Rc;

use nest_engine::Engine;
use nest_repro::{presets, EngineConfig, Workload};
use nest_sched::{Cfs, Nest, SchedPolicy, Smove};
use nest_simcore::{Probe, SimRng, Time, TraceEvent};
use nest_workloads::{
    configure::Configure,
    hackbench::{Hackbench, HackbenchSpec},
    nas::Nas,
    schbench::{Schbench, SchbenchSpec},
    server::{Server, ServerSpec},
};

/// Checks trace well-formedness: RunStart/RunStop pairing per core, no
/// frequency outside the machine envelope, monotonic time.
#[derive(Default)]
struct InvariantProbe {
    errors: Rc<RefCell<Vec<String>>>,
    running: Vec<Option<u32>>,
    fmin_khz: u64,
    fmax_khz: u64,
    last: Time,
}

impl Probe for InvariantProbe {
    fn on_event(&mut self, now: Time, event: &TraceEvent) {
        let err = |m: String| self.errors.borrow_mut().push(m);
        if now < self.last {
            err(format!("time went backwards at {now}"));
        }
        self.last = now;
        match event {
            TraceEvent::RunStart { task, core } => {
                let slot = &mut self.running[core.index()];
                if let Some(t) = slot {
                    err(format!("core {core} started {task} while running {t}"));
                }
                *slot = Some(task.0);
            }
            TraceEvent::RunStop { task, core, .. } => {
                let slot = &mut self.running[core.index()];
                if *slot != Some(task.0) {
                    err(format!("core {core} stopped {task} but ran {slot:?}"));
                }
                *slot = None;
            }
            TraceEvent::FreqChange { core, freq } => {
                let khz = freq.as_khz();
                if khz < self.fmin_khz || khz > self.fmax_khz {
                    err(format!("core {core} at {freq} outside envelope"));
                }
            }
            TraceEvent::SpinStart { core } if self.running[core.index()].is_some() => {
                err(format!("core {core} spinning while running a task"));
            }
            _ => {}
        }
    }
}

fn check(workload: &dyn Workload, policy: Box<dyn SchedPolicy>) {
    let machine = presets::xeon_6130(2);
    let mut cfg = EngineConfig::new(machine.clone());
    cfg.horizon = Time::from_secs(120);
    let mut engine = Engine::new(cfg, policy);
    let errors = Rc::new(RefCell::new(Vec::new()));
    engine.add_probe(Box::new(InvariantProbe {
        errors: Rc::clone(&errors),
        running: vec![None; machine.n_cores()],
        fmin_khz: machine.freq.fmin.as_khz(),
        fmax_khz: machine.freq.fmax().as_khz(),
        last: Time::ZERO,
    }));
    let mut rng = SimRng::new(3);
    let tasks = workload.build(&mut engine, &mut rng);
    let spawned = tasks.len();
    for t in tasks {
        engine.spawn(t);
    }
    let out = engine.run();
    assert!(
        !out.hit_horizon,
        "{}: did not finish (deadlock or runaway)",
        workload.name()
    );
    assert_eq!(out.live_tasks, 0, "{}: tasks leaked", workload.name());
    assert!(out.total_tasks >= spawned);
    assert!(out.energy_joules > 0.0);
    let errs = errors.borrow();
    assert!(
        errs.is_empty(),
        "{}: {:?}",
        workload.name(),
        &errs[..errs.len().min(5)]
    );
}

#[test]
fn invariants_configure_under_all_policies() {
    let w = Configure::named("gdb");
    check(&w, Box::new(Cfs::new()));
    check(&w, Box::new(Nest::new(64)));
    check(&w, Box::new(Smove::new()));
}

#[test]
fn invariants_nas_barriers() {
    check(&Nas::named("is.C.x"), Box::new(Nest::new(64)));
    check(&Nas::named("is.C.x"), Box::new(Cfs::new()));
}

#[test]
fn invariants_hackbench_channels() {
    let hb = Hackbench::new(HackbenchSpec {
        groups: 4,
        fan: 5,
        loops: 50,
        msg_cycles: 20_000,
    });
    check(&hb, Box::new(Nest::new(64)));
    check(&hb, Box::new(Cfs::new()));
}

#[test]
fn invariants_schbench_request_reply() {
    let sb = Schbench::new(SchbenchSpec {
        message_threads: 4,
        workers_per_message: 4,
        requests_per_worker: 20,
        think_ms: 1.0,
    });
    check(&sb, Box::new(Nest::new(64)));
}

#[test]
fn invariants_server_open_loop() {
    check(&Server::new(ServerSpec::redis()), Box::new(Nest::new(64)));
    check(&Server::new(ServerSpec::nginx(100)), Box::new(Cfs::new()));
}

#[test]
fn invariants_queue_driven_dacapo() {
    use nest_workloads::dacapo::Dacapo;
    check(&Dacapo::named("graphchi-eval"), Box::new(Nest::new(64)));
}
