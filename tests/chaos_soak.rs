//! Chaos soak: randomized short fault plans against every policy, with
//! the kernel-state invariant checker in fail-fast mode. A violation —
//! a task running on two cores, a placement onto an offline core, a
//! frequency outside the (possibly throttled) envelope — panics with the
//! rule name and simulated time, failing the test on the spot.
//!
//! The plans are drawn from a seeded [`SimRng`], so the soak is as
//! deterministic as every other test in the repo: a failure reproduces
//! by rerunning, and the corpus only changes when this file does.

use nest_core::{presets, run_once_with, PolicyKind, SimConfig};
use nest_faults::FaultPlan;
use nest_obs::InvariantChecker;
use nest_scenario::Scenario;
use nest_simcore::{Probe, SimRng, Time};
use nest_workloads::hackbench::{Hackbench, HackbenchSpec};

/// Draws one short random plan: each fault kind appears with its own
/// probability, parameters in ranges that keep runs quick but make the
/// perturbation real (cores actually lost, caps actually lowered).
fn random_plan(rng: &mut SimRng, n_sockets: u64) -> String {
    let mut clauses = Vec::new();
    if rng.uniform_f64() < 0.8 {
        let n = rng.uniform_u64(1, 12);
        let at = rng.uniform_u64(1, 80);
        let dur = rng.uniform_u64(5, 250);
        clauses.push(format!("hotplug={n}@{at}ms:{dur}ms"));
    }
    if rng.uniform_f64() < 0.7 {
        let socket = rng.uniform_u64(0, n_sockets - 1);
        let factor = rng.uniform_u64(50, 95);
        let at = rng.uniform_u64(0, 60);
        clauses.push(format!("throttle=s{socket}:0.{factor:02}@{at}ms"));
    }
    if rng.uniform_f64() < 0.5 {
        let us = rng.uniform_u64(5, 300);
        clauses.push(format!("jitter={us}us"));
    }
    if rng.uniform_f64() < 0.5 {
        let n = rng.uniform_u64(1, 6);
        let at = rng.uniform_u64(1, 50);
        let dur = rng.uniform_u64(10, 200);
        clauses.push(format!("stragglers={n}@{at}ms:{dur}ms"));
    }
    clauses.join(",")
}

/// Builds a fail-fast invariant checker pair for `machine`.
fn checker_for(
    machine: &nest_core::MachineSpec,
) -> (
    Box<dyn Probe>,
    std::rc::Rc<std::cell::RefCell<nest_obs::InvariantCounts>>,
) {
    let (checker, counts) = InvariantChecker::new(
        machine.n_cores(),
        machine.freq.fmin.as_khz(),
        machine.freq.fmax().as_khz(),
    );
    (Box::new(checker.fail_fast()), counts)
}

#[test]
fn randomized_fault_plans_never_break_invariants() {
    let machine = presets::xeon_5218();
    let n_sockets = machine.sockets as u64;
    let workload = Hackbench::new(HackbenchSpec {
        groups: 4,
        fan: 4,
        loops: 30,
        msg_cycles: 20_000,
    });
    let mut rng = SimRng::new(0xC4A05);
    for round in 0..6 {
        let spec = random_plan(&mut rng, n_sockets);
        let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("bad plan {spec:?}: {e}"));
        for policy in [PolicyKind::Cfs, PolicyKind::Nest, PolicyKind::Smove] {
            let cfg = SimConfig::new(machine.clone())
                .policy(policy.clone())
                .seed(100 + round)
                .horizon(Time::from_secs(120))
                .faults(plan.clone());
            let (checker, counts) = InvariantChecker::new(
                machine.n_cores(),
                machine.freq.fmin.as_khz(),
                machine.freq.fmax().as_khz(),
            );
            // Fail-fast: any violation panics with rule + time + plan.
            let probe: Box<dyn Probe> = Box::new(checker.fail_fast());
            let result = run_once_with(&cfg, &workload, vec![probe]);
            let counts = counts.borrow();
            assert_eq!(
                counts.violations, 0,
                "policy {policy:?}, plan {spec:?}: {counts:?}"
            );
            assert!(counts.events_checked > 0);
            // The always-on counting checker inside run_once_with must
            // agree with our fail-fast copy.
            assert_eq!(result.invariants.violations, 0);
        }
    }
}

#[test]
fn synthetic_512_core_domain_soak_never_breaks_invariants() {
    // A 4-socket × 8-CCX × 16-core synthetic machine (512 cores) under
    // the CCX-sharded Nest policy: domain-local nests, per-CCX turbo
    // ladders, and fault plans that hotplug whole swaths of cores must
    // all hold the same kernel-state invariants as the Table 2 presets.
    let s = Scenario::parse(
        "synth:sockets=4,ccx=8,cores=16,numa=ring",
        "nest:domain=ccx",
        "schedutil",
        "hackbench:g=4,fan=4,loops=10",
    )
    .expect("soak scenario parses");
    let machine = s.sim_config().machine.clone();
    let mut rng = SimRng::new(0x512C0);
    for round in 0..2 {
        let spec = random_plan(&mut rng, machine.sockets as u64);
        let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("bad plan {spec:?}: {e}"));
        let cfg = s
            .sim_config()
            .seed(7_000 + round)
            .horizon(Time::from_secs(120))
            .faults(plan);
        let (probe, counts) = checker_for(&machine);
        let workload = s.build_workload();
        let result = run_once_with(&cfg, workload.as_ref(), vec![probe]);
        let counts = counts.borrow();
        assert_eq!(counts.violations, 0, "plan {spec:?}: {counts:?}");
        assert!(counts.events_checked > 0);
        assert_eq!(result.invariants.violations, 0, "plan {spec:?}");
    }
}

#[test]
fn two_host_fleet_soak_never_breaks_invariants() {
    // A 2-host fleet with the full robustness surface live at once —
    // warmth routing, retries, hedging, a mid-run crash + cold restart,
    // and a degraded (throttled) survivor. The fail-fast checker rides
    // host 0 (extra probes attach to the first host's first epoch); the
    // always-on counting checkers inside every host cell merge into
    // `result.invariants`, so the assertion below spans both hosts and
    // the restarted epoch.
    let s = Scenario::parse(
        "5218",
        "nest",
        "schedutil",
        "fleet:hosts=2,lb=warmth,retry=2,timeout=20ms,hedge=p95,\
         hostdown=1@30ms:40ms,degrade=h1:0.8@10ms\
         +serve:rate=1500,dist=lognorm,requests=200+hackbench:g=2",
    )
    .expect("fleet soak scenario parses");
    let machine = s.sim_config().machine.clone();
    for seed in [11u64, 12] {
        let cfg = s.sim_config().seed(seed).horizon(Time::from_secs(120));
        let (probe, counts) = checker_for(&machine);
        let workload = s.build_workload();
        let result = run_once_with(&cfg, workload.as_ref(), vec![probe]);
        let counts = counts.borrow();
        assert_eq!(counts.violations, 0, "seed {seed}: {counts:?}");
        assert!(counts.events_checked > 0);
        assert_eq!(result.invariants.violations, 0, "seed {seed}");
        // The fleet's request accounting must close even through the
        // crash: every offered request completes, fails, or is shed.
        let fleet = result.fleet.as_ref().expect("fleet workload ran");
        let m = &fleet.metrics;
        assert_eq!(m.offered, 200, "seed {seed}");
        assert_eq!(
            m.completed + m.failed + m.shed,
            m.offered,
            "seed {seed}: accounting leak"
        );
        assert_eq!(m.crashes, 1, "seed {seed}");
        assert_eq!(m.restarts, 1, "seed {seed}");
    }
}
