#!/usr/bin/env bash
# Offline CI gate for the nest reproduction workspace.
#
# Runs the same checks as .github/workflows/ci.yml, in order of
# increasing cost, stopping at the first failure. No step needs network
# access: the workspace has no external dependencies (property tests and
# criterion benches are gated behind off-by-default features).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all -- --check
step cargo clippy --workspace --all-targets --release -- -D warnings
step cargo build --workspace --release
step cargo test --workspace --release -q
# rustdoc is the only checker for doc syntax and intra-doc links, and
# nest-simcore/nest-sched carry #![deny(missing_docs)].
RUSTDOCFLAGS="-D warnings" step cargo doc --workspace --no-deps --release

echo
echo "==> CI gate passed"
