#!/usr/bin/env bash
# Offline CI gate for the nest reproduction workspace.
#
# Runs the same checks as .github/workflows/ci.yml, in order of
# increasing cost, stopping at the first failure. No step needs network
# access: the workspace has no external dependencies (property tests and
# criterion benches are gated behind off-by-default features).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all -- --check
step cargo clippy --workspace --all-targets --release -- -D warnings
step cargo build --workspace --release
step cargo test --workspace --release -q
# rustdoc is the only checker for doc syntax and intra-doc links, and
# nest-simcore/nest-sched/nest-scenario carry #![deny(missing_docs)].
RUSTDOCFLAGS="-D warnings" step cargo doc --workspace --no-deps --release

# The scenario CLI: the registries list cleanly and an arbitrary
# non-figure combination runs end to end.
step cargo run --release -q -p nest-bench --bin nest-sim -- list
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$(mktemp -d)" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5220 --policy smove --governor performance \
    --workload schbench:mt=2,w=2,requests=5 --runs 2

# Robustness: the chaos soak runs randomized fault plans under every
# policy with the invariant checker in fail-fast mode, and a faulted
# scenario runs end to end through the CLI (exiting non-zero on any
# cell failure or invariant violation).
step cargo test --release -q --test chaos_soak
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$(mktemp -d)" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 6130-4 --policy cfs --policy nest --governor schedutil \
    --workload configure:gdb,tests=40 --runs 2 \
    --faults "hotplug=8@50ms:200ms,throttle=s0:0.8"

# Decision observability: `trace` exports Chrome trace-event JSON and
# re-parses it with the in-tree codec before writing (a failing parse
# exits non-zero), `stats` prints the decision-metrics table.
obsdir="$(mktemp -d)"
step cargo run --release -q -p nest-bench --bin nest-sim -- \
    trace --machine 5218 --policy nest --governor schedutil \
    --workload configure:gdb,tests=40 --out "$obsdir/trace.json" \
    --window 0:2 --events run,placement,nest
step test -s "$obsdir/trace.json"
step cargo run --release -q -p nest-bench --bin nest-sim -- \
    stats --machine 5218 --policy nest --governor schedutil \
    --workload configure:gdb,tests=40

# The serving lens: an open-loop `serve:` stream runs end to end through
# the CLI and reports its tail-latency/SLO metrics.
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$(mktemp -d)" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5218 --policy cfs --policy nest --governor schedutil \
    --workload serve:rate=400,requests=200,dist=lognorm,slo=2ms --runs 2
step cargo run --release -q -p nest-bench --bin nest-sim -- \
    stats --machine 5218 --policy nest --governor schedutil \
    --workload serve:rate=400,requests=200,dist=lognorm

# Latency attribution + telemetry diff: `stats --json` carries the
# phase-breakdown block, two identical runs' telemetry self-compare
# with zero deltas (exit 0), and a perturbed run must trip the
# regression threshold (non-zero exit).
diffdir="$(mktemp -d)"
diffenv=(NEST_CACHE=off NEST_PROGRESS=0)
step env "${diffenv[@]}" NEST_RESULTS_DIR="$diffdir/a" \
    cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5218 --policy nest --governor schedutil \
    --workload serve:rate=400,requests=200,dist=lognorm,slo=2ms --out d
step env "${diffenv[@]}" NEST_RESULTS_DIR="$diffdir/b" \
    cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5218 --policy nest --governor schedutil \
    --workload serve:rate=400,requests=200,dist=lognorm,slo=2ms --out d
step env "${diffenv[@]}" NEST_RESULTS_DIR="$diffdir/c" \
    cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5218 --policy cfs --governor schedutil \
    --workload serve:rate=1600,requests=200,dist=lognorm,slo=2ms --out d
echo
echo "==> nest-sim stats --json carries the phase-breakdown block"
cargo run --release -q -p nest-bench --bin nest-sim -- \
    stats --machine 5218 --policy nest --governor schedutil \
    --workload serve:rate=400,requests=200,dist=lognorm --json \
    > "$diffdir/stats.json"
step grep -q '"phase_metrics"' "$diffdir/stats.json"
step cargo run --release -q -p nest-bench --bin nest-sim -- \
    diff "$diffdir/a/d.telemetry.json" "$diffdir/b/d.telemetry.json"
if cargo run --release -q -p nest-bench --bin nest-sim -- \
    diff "$diffdir/a/d.telemetry.json" "$diffdir/c/d.telemetry.json" \
    --threshold 5 >/dev/null; then
    echo "ERROR: perturbed telemetry diff reported no regression" >&2
    exit 1
fi
echo "==> telemetry self-compare clean; perturbed diff trips the gate"

# Snapshot/replay equivalence: running from the scenario while
# snapshotting at a midpoint (mode A) and restoring that snapshot and
# continuing (mode B) must write byte-identical artifacts, and a
# corrupted snapshot must be refused with exit 2.
snapdir="$(mktemp -d)"
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$snapdir/a" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    replay --at 0.05 --snap "$snapdir/warm.snap" \
    --machine 5218 --policy nest --governor schedutil \
    --workload configure:gdb --seed 42
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$snapdir/b" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    replay --from "$snapdir/warm.snap"
step cmp "$snapdir/a/replay.json" "$snapdir/b/replay.json"
sed 's/"kernel"/"kernell"/' "$snapdir/warm.snap" > "$snapdir/corrupt.snap"
if NEST_PROGRESS=0 NEST_RESULTS_DIR="$snapdir/c" \
    cargo run --release -q -p nest-bench --bin nest-sim -- \
    replay --from "$snapdir/corrupt.snap" 2>/dev/null; then
    echo "ERROR: corrupted snapshot was accepted" >&2
    exit 1
fi
echo "==> corrupted snapshot refused, as it must be"

# Harness warm-start: a figure run with NEST_WARM_START (first pass
# snapshots, second pass restores) must write the same artifact bytes
# as a cold run, while its telemetry records the warm hits.
warmdir="$(mktemp -d)"
warmenv=(NEST_QUICK=1 NEST_SEED=42 NEST_RUNS=1 NEST_CACHE=off NEST_PROGRESS=0)
step env "${warmenv[@]}" NEST_RESULTS_DIR="$warmdir/cold" \
    cargo run --release -q -p nest-bench --bin fig04_underload
step env "${warmenv[@]}" NEST_RESULTS_DIR="$warmdir/warm1" \
    NEST_WARM_START=0.05 NEST_CACHE_DIR="$warmdir/cache" \
    cargo run --release -q -p nest-bench --bin fig04_underload
step env "${warmenv[@]}" NEST_RESULTS_DIR="$warmdir/warm2" \
    NEST_WARM_START=0.05 NEST_CACHE_DIR="$warmdir/cache" \
    cargo run --release -q -p nest-bench --bin fig04_underload
step cmp "$warmdir/cold/fig04_underload.json" "$warmdir/warm1/fig04_underload.json"
step cmp "$warmdir/cold/fig04_underload.json" "$warmdir/warm2/fig04_underload.json"
step grep -q '"warm_start": true' "$warmdir/warm2/fig04_underload.telemetry.json"
if grep -q '"cells_warm": 0,' "$warmdir/warm2/fig04_underload.telemetry.json"; then
    echo "ERROR: second warm-start pass restored no snapshots" >&2
    exit 1
fi
echo "==> warm-start artifacts byte-identical; second pass restored snapshots"

# Hierarchical domains (PR 8): a 512-core synthetic multi-CCX machine
# runs end to end under every policy including the domain-local Nest,
# and the quick-mode scaling sweep stays within the committed
# BENCH_pr8.json envelope (exact event counts; generous wall-clock
# ratio).
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$(mktemp -d)" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine "synth:sockets=4,ccx=8,cores=16,numa=ring" \
    --policy cfs --policy nest --policy "nest:domain=ccx" --policy smove \
    --governor schedutil --workload "schbench:mt=32,w=15,requests=20" --runs 1
step ./scripts/check_scale_regression.sh

# Byte-identity guard: fig02/fig04/fig10/table4/fig_serve_tail/
# fig_attribution/faulted/synth/replay artifacts vs committed golden
# hashes.
step ./scripts/verify_artifacts.sh

echo
echo "==> CI gate passed"
