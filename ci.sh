#!/usr/bin/env bash
# Offline CI gate for the nest reproduction workspace.
#
# Runs the same checks as .github/workflows/ci.yml, in order of
# increasing cost, stopping at the first failure. No step needs network
# access: the workspace has no external dependencies (property tests and
# criterion benches are gated behind off-by-default features).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all -- --check
step cargo clippy --workspace --all-targets --release -- -D warnings
step cargo build --workspace --release
step cargo test --workspace --release -q
# rustdoc is the only checker for doc syntax and intra-doc links, and
# nest-simcore/nest-sched/nest-scenario carry #![deny(missing_docs)].
RUSTDOCFLAGS="-D warnings" step cargo doc --workspace --no-deps --release

# The scenario CLI: the registries list cleanly and an arbitrary
# non-figure combination runs end to end.
step cargo run --release -q -p nest-bench --bin nest-sim -- list
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$(mktemp -d)" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5220 --policy smove --governor performance \
    --workload schbench:mt=2,w=2,requests=5 --runs 2

# Robustness: the chaos soak runs randomized fault plans under every
# policy with the invariant checker in fail-fast mode, and a faulted
# scenario runs end to end through the CLI (exiting non-zero on any
# cell failure or invariant violation).
step cargo test --release -q --test chaos_soak
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$(mktemp -d)" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 6130-4 --policy cfs --policy nest --governor schedutil \
    --workload configure:gdb,tests=40 --runs 2 \
    --faults "hotplug=8@50ms:200ms,throttle=s0:0.8"

# Decision observability: `trace` exports Chrome trace-event JSON and
# re-parses it with the in-tree codec before writing (a failing parse
# exits non-zero), `stats` prints the decision-metrics table.
obsdir="$(mktemp -d)"
step cargo run --release -q -p nest-bench --bin nest-sim -- \
    trace --machine 5218 --policy nest --governor schedutil \
    --workload configure:gdb,tests=40 --out "$obsdir/trace.json" \
    --window 0:2 --events run,placement,nest
step test -s "$obsdir/trace.json"
step cargo run --release -q -p nest-bench --bin nest-sim -- \
    stats --machine 5218 --policy nest --governor schedutil \
    --workload configure:gdb,tests=40

# The serving lens: an open-loop `serve:` stream runs end to end through
# the CLI and reports its tail-latency/SLO metrics.
NEST_CACHE=off NEST_PROGRESS=0 NEST_RESULTS_DIR="$(mktemp -d)" \
    step cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5218 --policy cfs --policy nest --governor schedutil \
    --workload serve:rate=400,requests=200,dist=lognorm,slo=2ms --runs 2
step cargo run --release -q -p nest-bench --bin nest-sim -- \
    stats --machine 5218 --policy nest --governor schedutil \
    --workload serve:rate=400,requests=200,dist=lognorm

# Byte-identity guard: fig02/fig04/fig10/table4/fig_serve_tail artifacts
# vs committed golden hashes.
step ./scripts/verify_artifacts.sh

echo
echo "==> CI gate passed"
