#!/usr/bin/env bash
# Byte-identity guard: regenerate representative artifacts (Figures 2,
# 4 and 10, Table 4, the serve tail sweep, the latency-attribution
# sweep, a faulted run, and a snapshot/replay continuation) in quick
# mode and compare their hashes against the committed golden set.
#
# The harness's determinism contract says artifact bytes depend only on
# the seed and the simulation inputs — never on worker count, cache
# state, or host. This script pins that contract in CI: any change to
# the simulator, the registries, or the seed derivation that shifts a
# result byte shows up as a hash mismatch. Intentional changes must
# regenerate the golden file (instructions printed on failure).
#
# Usage: ./scripts/verify_artifacts.sh [--update]
set -euo pipefail
cd "$(dirname "$0")/.."

golden="scripts/golden_artifacts.sha256"
outdir="$(mktemp -d)"
trap 'rm -rf "$outdir"' EXIT

export NEST_QUICK=1 NEST_RUNS=1 NEST_SEED=42 NEST_CACHE=off
export NEST_PROGRESS=0 NEST_RESULTS_DIR="$outdir"
unset NEST_JOBS 2>/dev/null || true

for bin in fig02_trace fig04_underload fig10_dacapo_speedup table4_overview fig_serve_tail fig_attribution fig_fleet_failover; do
    echo "==> regenerating $bin (quick mode)"
    cargo run --release -q -p nest-bench --bin "$bin" >/dev/null
done

# A fault-enabled scenario rides along: fault injection must be exactly
# as deterministic as the fault-free path (and must never shift the
# fault-free hashes above, which predate fault support).
echo "==> regenerating faulted_pin (nest-sim run --faults)"
cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine 5218 --policy cfs --policy nest --governor schedutil \
    --workload configure:gdb --runs 2 \
    --faults "hotplug=8@50ms:200ms,throttle=s0:0.8,jitter=50us" \
    --out faulted_pin >/dev/null

# A synthetic multi-CCX machine rides along (PR 8): the domain-sharded
# scan structures and the CCX-scoped turbo ladders must be exactly as
# deterministic as the Table 2/3 presets above (whose hashes predate
# hierarchical domains and must never move).
echo "==> regenerating synth_pin (nest-sim run on a 256-core synth machine)"
cargo run --release -q -p nest-bench --bin nest-sim -- \
    run --machine "synth:sockets=4,ccx=8,cores=8,numa=ring" \
    --policy cfs --policy nest --policy "nest:domain=ccx" --policy smove \
    --governor schedutil --workload "schbench:mt=16,w=15,requests=20" \
    --runs 2 --out synth_pin >/dev/null

# A replay continuation rides along too: pausing at a midpoint,
# snapshotting, and continuing must keep producing the same artifact
# bytes as the straight runs above keep producing theirs.
echo "==> regenerating replay_pin (nest-sim replay --at)"
cargo run --release -q -p nest-bench --bin nest-sim -- \
    replay --at 0.05 --snap "$outdir/replay_pin.snap" \
    --machine 5218 --policy nest --governor schedutil \
    --workload configure:gdb --seed 42 --out replay_pin >/dev/null

(cd "$outdir" && sha256sum fig02_trace.json fig04_underload.json \
    fig10_dacapo_speedup.json table4_overview.json fig_serve_tail.json \
    fig_attribution.json faulted_pin.json synth_pin.json replay_pin.json \
    fig_fleet_failover.json) \
    > "$outdir/actual.sha256"

if [[ "${1:-}" == "--update" ]]; then
    cp "$outdir/actual.sha256" "$golden"
    echo "==> updated $golden"
    cat "$golden"
    exit 0
fi

if diff -u "$golden" "$outdir/actual.sha256"; then
    echo "==> artifact bytes match the golden hashes"
else
    echo >&2
    echo "ERROR: artifact bytes drifted from $golden." >&2
    echo "If the change is intentional (a simulation-behaviour change)," >&2
    echo "regenerate with: ./scripts/verify_artifacts.sh --update" >&2
    exit 1
fi
