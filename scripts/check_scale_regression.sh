#!/usr/bin/env bash
# Scaling regression guard: run the quick-mode fig_scale sweep (256-core
# synthetic multi-CCX machine, all four policies) and compare it against
# the committed BENCH_pr8.json.
#
# Two checks per policy cell:
#
#  * events_total must match EXACTLY — the event count is part of the
#    determinism contract (same seed, same simulation, same events on
#    every host), so any drift means simulation behaviour changed and
#    BENCH_pr8.json must be regenerated deliberately.
#  * events_per_sec must stay above MIN_RATIO of the committed value.
#    Wall-clock varies across hosts, so the ratio is generous by default
#    (0.25); it exists to catch order-of-magnitude regressions such as an
#    accidentally O(n_cores) decision path, not percent-level noise.
#    Override with NEST_SCALE_GUARD_MIN_RATIO, or set it to 0 to skip the
#    throughput check entirely (e.g. on heavily loaded CI hosts).
#
# Usage: ./scripts/check_scale_regression.sh
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="$(mktemp -d)"
trap 'rm -rf "$outdir"' EXIT

echo "==> running fig_scale (quick mode)"
NEST_QUICK=1 NEST_RUNS=1 NEST_SEED=42 NEST_CACHE=off NEST_PROGRESS=0 \
    NEST_RESULTS_DIR="$outdir" \
    cargo run --release -q -p nest-bench --bin fig_scale >/dev/null

python3 - "$outdir/fig_scale.perf.json" BENCH_pr8.json <<'EOF'
import json, os, sys

actual = {c["policy"]: c for c in json.load(open(sys.argv[1]))["cells"]}
golden = json.load(open(sys.argv[2]))["quick"]["cells"]
min_ratio = float(os.environ.get("NEST_SCALE_GUARD_MIN_RATIO", "0.25"))

failed = False
for policy, g in golden.items():
    a = actual.get(policy)
    if a is None:
        print(f"ERROR: policy {policy!r} missing from fig_scale output")
        failed = True
        continue
    if a["events_total"] != g["events_total"]:
        print(
            f"ERROR: {policy}: events_total {a['events_total']} != committed "
            f"{g['events_total']} (simulation behaviour drifted; regenerate "
            f"BENCH_pr8.json if intentional)"
        )
        failed = True
    ratio = a["events_per_sec"] / g["events_per_sec"]
    status = "ok" if ratio >= min_ratio else "REGRESSION"
    print(
        f"{policy:>16}: {a['events_per_sec']:>10.0f} ev/s vs committed "
        f"{g['events_per_sec']:>8.0f} (x{ratio:.2f}, floor x{min_ratio}) {status}"
    )
    if ratio < min_ratio:
        failed = True

if failed:
    sys.exit(1)
print("==> scaling guard passed")
EOF
